package exec

import (
	"capuchin/internal/fault"
	"capuchin/internal/graph"
	"capuchin/internal/memory"
	"capuchin/internal/obs"
	"capuchin/internal/sim"
	"capuchin/internal/tensor"
)

// Env is the controlled interface policies use to inspect the executor and
// trigger memory-management actions. All asynchronous actions anchor at the
// current access's effect time, matching the paper's delayed-operation
// design: a swap triggered by a tensor access waits until the GPU stream
// reaches that point (§5.4).
type Env struct {
	s *Session
}

// Now reports the current virtual time on the compute stream.
func (e *Env) Now() sim.Time { return e.s.now() }

// Iteration reports the running iteration index.
func (e *Env) Iteration() int { return e.s.iter }

// Graph exposes the graph for static policies (vDNN, checkpointing).
// Capuchin deliberately never calls this: it is computation-graph agnostic.
func (e *Env) Graph() *graph.Graph { return e.s.g }

// DeviceMemory reports the allocator capacity.
func (e *Env) DeviceMemory() int64 { return e.s.pool.Capacity() }

// FreeBytes reports currently free device memory.
func (e *Env) FreeBytes() int64 { return e.s.pool.FreeBytes() }

// UsedBytes reports currently used device memory.
func (e *Env) UsedBytes() int64 { return e.s.pool.Used() }

// SwapTime estimates the one-way transfer duration of a tensor, the
// quantity in the paper's Eq. 1 (size divided by PCIe bandwidth).
func (e *Env) SwapTime(t *tensor.Tensor) sim.Time {
	return e.SwapOutDuration(t.Bytes())
}

// SwapInTime estimates the host-to-device transfer duration.
func (e *Env) SwapInTime(t *tensor.Tensor) sim.Time {
	return e.SwapInDuration(t.Bytes())
}

// SwapOutDuration reports the device-to-host transfer time for a size.
// Under comm-aware scheduling the estimate reflects the effective
// bandwidth left by a pending all-reduce window at the action anchor, so
// Free-Time ranking (Eq. 1) sees the real cost of swapping into
// collective traffic.
func (e *Env) SwapOutDuration(bytes int64) sim.Time {
	if e.s.cfg.CommAware {
		if w, ok := e.s.commSlowdownAt(e.s.actionAnchor); ok {
			return e.s.dev.D2H.DegradedTransferTime(bytes, w.Slowdown)
		}
	}
	return e.s.dev.D2H.TransferTime(bytes)
}

// SwapInDuration reports the host-to-device transfer time for a size,
// comm-adjusted like SwapOutDuration.
func (e *Env) SwapInDuration(bytes int64) sim.Time {
	if e.s.cfg.CommAware {
		if w, ok := e.s.commSlowdownAt(e.s.actionAnchor); ok {
			return e.s.dev.H2D.DegradedTransferTime(bytes, w.Slowdown)
		}
	}
	return e.s.dev.H2D.TransferTime(bytes)
}

// Tracing reports whether an observability tracer is attached. Policies
// gate decision construction on it so untraced runs pay nothing.
func (e *Env) Tracing() bool { return e.s.tr != nil }

// Decide records a policy decision in the audit log; a no-op without a
// tracer. The executor stamps the policy name, virtual time and iteration
// when the caller leaves them zero.
func (e *Env) Decide(d obs.Decision) { e.s.decide(d) }

// FaultsEnabled reports whether the session runs under an active
// fault-injection plan. Policies use it to gate degradation heuristics so
// fault-free runs stay bit-identical to the unfaulted executor.
func (e *Env) FaultsEnabled() bool { return e.s.inj.Enabled() }

// LinkDegraded reports whether the PCIe link is inside an injected
// bandwidth-degradation window right now. Always false without faults.
func (e *Env) LinkDegraded() bool { return e.s.inj.LinkDegraded(e.s.actionAnchor) }

// SwapOutAsync proactively evicts a resident tensor: the D2H copy is
// enqueued at the action anchor and the device memory becomes free when
// the copy completes (decoupled computation and swapping, §5.3). The call
// is a no-op if the tensor is not currently resident or host memory is
// exhausted. Proactive swaps fail fast under injected faults — returning
// false instead of spending the retry budget — so the policy can fall
// back to recomputation.
func (e *Env) SwapOutAsync(t *tensor.Tensor) bool {
	s := e.s
	if t.Status != tensor.In || t.Persistent {
		return false
	}
	if s.inj.HostFails(t.ID) {
		s.stats.HostFaults++
		if s.tr != nil {
			s.laneInstant("fault", "host-fault", "d2h", t.ID, s.actionAnchor)
			s.decide(obs.Decision{
				Tensor: t.ID, Action: "swap-out-failed", Bytes: t.Bytes(),
				Reason: "injected pinned-host reservation fault",
			})
		}
		if s.met != nil {
			s.met.Add("faults/host", 1)
		}
		return false
	}
	if err := s.host.ReserveIdx(int(t.Idx), t.ID, t.Bytes()); err != nil {
		if s.tr != nil {
			s.decide(obs.Decision{
				Tensor: t.ID, Action: "swap-out-failed", Bytes: t.Bytes(),
				Reason: "pinned host arena exhausted",
			})
		}
		return false
	}
	anchor := s.actionAnchor
	cw, cwOK := CommWindow{}, false
	if adj, w, ok := s.deferForComm(s.d2h, s.dev.D2H, t.Bytes(), anchor); ok {
		cw, cwOK = w, true
		if adj != anchor {
			anchor = adj
			if s.met != nil {
				s.met.Add("comm/defer", 1)
			}
		}
	}
	// The "swapout <id>" label is observable only through a tracer or span
	// recording; the steady untraced path passes the bare kind.
	label := "swapout"
	if s.tr != nil || s.d2h.Recording() {
		label = "swapout " + t.ID
	}
	dur := s.dev.D2H.DegradedTransferTime(t.Bytes(), s.linkSlowdown(sim.MaxTime(s.d2h.AvailableAt(), anchor)))
	if s.inj.TransferFails(fault.D2H, t.ID) {
		// Aborted DMA: the link is occupied to the abort point, the host
		// reservation is rolled back and the tensor stays resident.
		s.stats.TransferFaults++
		failStart, failEnd := s.d2h.Run(label+" !fault", anchor, dur/2)
		if s.tr != nil {
			s.tr.Emit(obs.Event{
				Kind: obs.KindSpan, Cat: "transfer", Name: label + " !fault",
				Lane: "d2h", Start: failStart, End: failEnd, Queued: s.actionAnchor,
				Iter: s.iter, Tensor: t.ID, Bytes: t.Bytes(), Detail: "aborted",
			})
			s.laneInstant("fault", "dma-abort", "d2h", t.ID, failEnd)
			s.decide(obs.Decision{
				Tensor: t.ID, Action: "swap-out-failed", Bytes: t.Bytes(),
				Reason: "injected DMA abort; proactive swaps fail fast",
			})
		}
		if s.met != nil {
			s.met.Add("faults/transfer", 1)
		}
		if err := s.host.ReleaseIdx(int(t.Idx), t.ID); err != nil {
			s.defErr = invariant("swapout-async", t.ID, err)
		}
		return false
	}
	start, end := s.d2h.Run(label, anchor, dur)
	if err := t.TransitionTo(tensor.SwappingOut); err != nil {
		s.defErr = invariant("swapout-async", t.ID, err)
		return false
	}
	s.pendingFrees.Add(sim.Pending{At: end, Size: t.Alloc.Size, Key: t.ID})
	s.stats.SwapOutCount++
	s.stats.SwapOutBytes += t.Bytes()
	if h := s.host.Peak(); h > s.stats.HostPeak {
		s.stats.HostPeak = h
	}
	if s.tr != nil {
		s.tr.Emit(obs.Event{
			Kind: obs.KindSpan, Cat: "transfer", Name: label,
			Lane: "d2h", Start: start, End: end, Queued: s.actionAnchor,
			Iter: s.iter, Tensor: t.ID, Bytes: t.Bytes(),
		})
		d := obs.Decision{
			Tensor: t.ID, Action: "swap-out", Bytes: t.Bytes(), At: s.actionAnchor,
			Reason: "proactive eviction overlapped with compute (§5.3)",
		}
		if cwOK {
			d.CommSlowdown, d.CommUntil = cw.Slowdown, cw.End
			if anchor != s.actionAnchor {
				d.Reason += "; deferred past a pending all-reduce window"
			}
		}
		s.decide(d)
	}
	if s.met != nil {
		s.met.Add("swap/out", 1)
		s.met.Observe("transfer/d2h", end-start)
		s.met.Observe("transfer-queue/d2h", start-s.actionAnchor)
	}
	return true
}

// SwapInAsync prefetches a swapped-out tensor (an in-trigger firing). The
// device buffer is allocated immediately; if that allocation fails the
// prefetch is skipped and the tensor will be fetched on demand at its
// back-access. Returns whether the prefetch was issued.
func (e *Env) SwapInAsync(t *tensor.Tensor) bool {
	s := e.s
	if t.Status != tensor.Out {
		return false
	}
	if err := s.applyDueFrees(s.now()); err != nil {
		s.defErr = err
		return false
	}
	if s.inj.AllocFails("prefetch") {
		// Spurious allocation failure: skip the prefetch; the back-access
		// fetches on demand.
		s.stats.AllocFaults++
		if s.tr != nil {
			s.laneInstant("fault", "alloc-fault", "h2d", t.ID, s.actionAnchor)
			s.decide(obs.Decision{
				Tensor: t.ID, Action: "prefetch-failed", Bytes: t.Bytes(),
				Reason: "injected allocation fault; back-access will fetch on demand",
			})
		}
		if s.met != nil {
			s.met.Add("faults/alloc", 1)
		}
		return false
	}
	a := s.pool.TryAlloc(t.Bytes())
	if a == nil {
		if s.tr != nil {
			s.decide(obs.Decision{
				Tensor: t.ID, Action: "prefetch-failed", Bytes: t.Bytes(),
				Reason: "no device memory for the prefetch buffer; back-access will fetch on demand",
			})
		}
		return false
	}
	anchor := s.actionAnchor
	cw, cwOK := CommWindow{}, false
	if adj, w, ok := s.deferForComm(s.h2d, s.dev.H2D, t.Bytes(), anchor); ok {
		cw, cwOK = w, true
		if adj != anchor {
			anchor = adj
			if s.met != nil {
				s.met.Add("comm/defer", 1)
			}
		}
	}
	label := "swapin"
	if s.tr != nil || s.h2d.Recording() {
		label = "swapin " + t.ID
	}
	dur := s.dev.H2D.DegradedTransferTime(t.Bytes(), s.linkSlowdown(sim.MaxTime(s.h2d.AvailableAt(), anchor)))
	if s.inj.TransferFails(fault.H2D, t.ID) {
		// Aborted prefetch DMA: occupy the link to the abort point and put
		// the buffer back; the back-access fetches on demand or recomputes.
		s.stats.TransferFaults++
		failStart, failEnd := s.h2d.Run(label+" !fault", anchor, dur/2)
		if s.tr != nil {
			s.tr.Emit(obs.Event{
				Kind: obs.KindSpan, Cat: "transfer", Name: label + " !fault",
				Lane: "h2d", Start: failStart, End: failEnd, Queued: s.actionAnchor,
				Iter: s.iter, Tensor: t.ID, Bytes: t.Bytes(), Detail: "aborted",
			})
			s.laneInstant("fault", "dma-abort", "h2d", t.ID, failEnd)
			s.decide(obs.Decision{
				Tensor: t.ID, Action: "prefetch-failed", Bytes: t.Bytes(),
				Reason: "injected DMA abort; back-access will fetch on demand or recompute",
			})
		}
		if s.met != nil {
			s.met.Add("faults/transfer", 1)
		}
		memory.MustFree(s.pool, a) // freeing the just-made allocation cannot fail
		return false
	}
	t.Alloc = a
	if err := t.TransitionTo(tensor.SwappingIn); err != nil {
		s.defErr = invariant("swapin-async", t.ID, err)
		return false
	}
	start, end := s.h2d.Run(label, anchor, dur)
	s.swapInSet(t, end)
	s.stats.PrefetchCount++
	s.stats.PrefetchBytes += t.Bytes()
	if s.tr != nil {
		s.memEvent("alloc", "prefetch", t.ID, t.Bytes(), s.actionAnchor)
		s.tr.Emit(obs.Event{
			Kind: obs.KindSpan, Cat: "transfer", Name: label,
			Lane: "h2d", Start: start, End: end, Queued: s.actionAnchor,
			Iter: s.iter, Tensor: t.ID, Bytes: t.Bytes(),
		})
		d := obs.Decision{
			Tensor: t.ID, Action: "prefetch", Bytes: t.Bytes(), At: s.actionAnchor,
			Reason: "in-trigger prefetch ahead of the back-access (§5.4)",
		}
		if cwOK {
			d.CommSlowdown, d.CommUntil = cw.Slowdown, cw.End
			if anchor != s.actionAnchor {
				d.Reason += "; deferred past a pending all-reduce window"
			}
		}
		s.decide(d)
	}
	if s.met != nil {
		s.met.Add("swap/prefetch", 1)
		s.met.Observe("transfer/h2d", end-start)
		s.met.Observe("transfer-queue/h2d", start-s.actionAnchor)
	}
	return true
}

// InflightSwapIns reports the number of swap-ins currently in flight.
func (e *Env) InflightSwapIns() int { return len(e.s.swapInList) }

// InflightSwapInBytes reports the device memory held by in-flight
// swap-ins; these buffers are not evictable until the transfers land.
func (e *Env) InflightSwapInBytes() int64 {
	var total int64
	for _, i := range e.s.swapInList {
		if t := e.s.tlist[i]; t.Alloc != nil {
			total += t.Alloc.Size
		}
	}
	return total
}

// ReleaseForRecompute frees a resident tensor's memory without a host
// copy; a later access regenerates it from lineage. No-op unless resident.
func (e *Env) ReleaseForRecompute(t *tensor.Tensor) bool {
	s := e.s
	if t.Status != tensor.In || t.Persistent {
		return false
	}
	if err := s.freeDevice(t, tensor.Recompute, "release-for-recompute"); err != nil {
		s.defErr = err
		return false
	}
	if s.tr != nil {
		s.memEvent("free", "recompute-drop", t.ID, t.Bytes(), s.now())
		s.decide(obs.Decision{
			Tensor: t.ID, Action: "release-recompute", Bytes: t.Bytes(),
			Reason: "planned recomputation: dropped now, lineage replay at the back-access",
		})
	}
	return true
}

// FallbackToRecompute abandons the swap path for t and releases it for
// lineage recomputation, recording the degradation in the iteration's
// SwapFallbacks counter. Policies call it when SwapOutAsync fails or the
// link is degraded under fault injection. Tensors still needed after an
// in-place parameter update are refused: their replay would read updated
// weights and corrupt the computation.
func (e *Env) FallbackToRecompute(t *tensor.Tensor) bool {
	if !e.s.fallbackSafe(t) || !e.ReleaseForRecompute(t) {
		return false
	}
	e.s.stats.SwapFallbacks++
	if e.s.tr != nil {
		e.s.decide(obs.Decision{
			Tensor: t.ID, Action: "fallback-recompute", Bytes: t.Bytes(),
			Reason: "policy abandoned the swap path (failed swap-out or degraded link)",
		})
	}
	if e.s.met != nil {
		e.s.met.Add("fallback/recompute", 1)
	}
	return true
}

// Evictable reports whether t is currently a legal eviction victim: it
// holds device memory in the evictable state and is neither persistent nor
// pinned by the executing node. Online policies (h-DTR) filter their
// candidate sets through this, so in-flight tensors are never chosen.
func (e *Env) Evictable(t *tensor.Tensor) bool {
	return t.Status == tensor.In && !t.Persistent && !e.s.pinned[t.Idx]
}

// RecomputeSafe reports whether t may be released for lineage
// recomputation: it needs a replayable producer and every remaining use
// must precede the first in-place parameter update, so the replay cannot
// observe modified weights.
func (e *Env) RecomputeSafe(t *tensor.Tensor) bool {
	return e.s.fallbackSafe(t)
}

// LRUResidents returns, oldest first, roughly need bytes of unpinned,
// non-persistent resident tensors — the paper's passive-mode victim scan
// over the tensor access list (§5.2). Policies delegate their OnOOM to
// this helper. The result may cover less than need (fragmentation can
// require evicting more than the shortfall; the executor's OOM loop calls
// OnOOM again until allocation succeeds or no victims remain); an empty
// result means nothing is evictable.
//
// The returned slice is a session-owned scratch buffer, valid until the
// next LRUResidents call: OnOOM implementations hand it straight back to
// the executor, which consumes it before asking again.
func (e *Env) LRUResidents(need int64) []*tensor.Tensor {
	s := e.s
	victims := s.scVictims[:0]
	var got int64
	for i := s.lruHead; i >= 0 && got < need; i = s.lruNext[i] {
		t := s.tlist[i]
		if t.Status != tensor.In || t.Persistent || s.pinned[i] {
			continue
		}
		victims = append(victims, t)
		got += t.Alloc.Size
	}
	s.scVictims = victims
	return victims
}
