package exec

import (
	"fmt"

	"capuchin/internal/obs"
	"capuchin/internal/sim"
)

// IterStats summarizes one executed iteration.
type IterStats struct {
	Iter int
	// Duration is the iteration makespan on the compute stream, including
	// the end-of-iteration transfer barrier.
	Duration sim.Time
	// StallTime is compute time lost waiting for transfers, passive
	// evictions and OOM synchronization.
	StallTime sim.Time
	// Nodes and Accesses count executed operations and reported accesses.
	Nodes    int
	Accesses int

	// Swap traffic.
	SwapOutCount    int
	SwapOutBytes    int64
	PrefetchCount   int
	PrefetchBytes   int64
	OnDemandInCount int
	OnDemandInBytes int64
	PassiveEvicts   int
	PassiveBytes    int64

	// Recomputation.
	RecomputeCount int
	RecomputeTime  sim.Time

	// Fault injection and recovery. All fields are zero in a fault-free
	// run; nonzero values record how the executor degraded gracefully.
	//
	// TransferFaults counts injected DMA aborts observed on either PCIe
	// direction; TransferRetries counts the re-issued attempts (a fault on
	// the final attempt is not retried).
	TransferFaults  int
	TransferRetries int
	// KernelSpikes counts kernels slowed by an injected latency spike and
	// SpikeTime the extra compute time they cost.
	KernelSpikes int
	SpikeTime    sim.Time
	// AllocFaults counts spurious device-allocation failures absorbed by
	// the OOM recovery loop; HostFaults counts spurious pinned-host
	// reservation failures.
	AllocFaults int
	HostFaults  int
	// SwapFallbacks counts tensors whose swap path (prefetch, on-demand
	// swap-in or eviction-to-host) was abandoned for recomputation.
	SwapFallbacks int
	// OOMRecoveries counts allocations that initially failed but
	// succeeded after eviction, backoff or retry; RecoveryEvicts counts
	// the passive evictions those recoveries triggered.
	OOMRecoveries  int
	RecoveryEvicts int

	// Memory.
	PeakBytes int64
	HostPeak  int64

	// Fingerprints for the correctness oracle.
	LossFingerprint  uint64
	ParamFingerprint uint64
}

// Throughput reports training speed in samples per second for the given
// batch size.
func (st IterStats) Throughput(batch int64) float64 {
	if st.Duration <= 0 {
		return 0
	}
	return float64(batch) / st.Duration.Seconds()
}

// Faulted reports whether the iteration observed any injected fault.
func (st IterStats) Faulted() bool {
	return st.TransferFaults > 0 || st.KernelSpikes > 0 || st.AllocFaults > 0 || st.HostFaults > 0
}

// FaultSummary formats the fault/recovery counters, e.g. for resilience
// tables; it returns "-" for a fault-free iteration.
func (st IterStats) FaultSummary() string {
	if !st.Faulted() && st.SwapFallbacks == 0 && st.OOMRecoveries == 0 {
		return "-"
	}
	return fmt.Sprintf("xfer %d(+%d retry), kernel %d, alloc %d, host %d, fallback %d, recovered %d/%d evicts",
		st.TransferFaults, st.TransferRetries, st.KernelSpikes, st.AllocFaults,
		st.HostFaults, st.SwapFallbacks, st.OOMRecoveries, st.RecoveryEvicts)
}

// String implements fmt.Stringer. Byte totals cover every swap direction
// (swap-out, prefetch, on-demand, passive) and use the shared adaptive
// formatter, so a 512 KiB prefetch no longer rounds down to "0MB".
func (st IterStats) String() string {
	s := fmt.Sprintf("iter %d: %v (stall %v), swapout %d/%s, prefetch %d/%s, ondemand %d/%s, passive %d/%s, recompute %d/%v, peak %s",
		st.Iter, st.Duration, st.StallTime,
		st.SwapOutCount, obs.FmtBytes(st.SwapOutBytes),
		st.PrefetchCount, obs.FmtBytes(st.PrefetchBytes),
		st.OnDemandInCount, obs.FmtBytes(st.OnDemandInBytes),
		st.PassiveEvicts, obs.FmtBytes(st.PassiveBytes),
		st.RecomputeCount, st.RecomputeTime, obs.FmtBytes(st.PeakBytes))
	if f := st.FaultSummary(); f != "-" {
		s += ", faults[" + f + "]"
	}
	return s
}
