package exec

import (
	"fmt"

	"capuchin/internal/sim"
)

// IterStats summarizes one executed iteration.
type IterStats struct {
	Iter int
	// Duration is the iteration makespan on the compute stream, including
	// the end-of-iteration transfer barrier.
	Duration sim.Time
	// StallTime is compute time lost waiting for transfers, passive
	// evictions and OOM synchronization.
	StallTime sim.Time
	// Nodes and Accesses count executed operations and reported accesses.
	Nodes    int
	Accesses int

	// Swap traffic.
	SwapOutCount    int
	SwapOutBytes    int64
	PrefetchCount   int
	PrefetchBytes   int64
	OnDemandInCount int
	OnDemandInBytes int64
	PassiveEvicts   int
	PassiveBytes    int64

	// Recomputation.
	RecomputeCount int
	RecomputeTime  sim.Time

	// Memory.
	PeakBytes int64
	HostPeak  int64

	// Fingerprints for the correctness oracle.
	LossFingerprint  uint64
	ParamFingerprint uint64
}

// Throughput reports training speed in samples per second for the given
// batch size.
func (st IterStats) Throughput(batch int64) float64 {
	if st.Duration <= 0 {
		return 0
	}
	return float64(batch) / st.Duration.Seconds()
}

// String implements fmt.Stringer.
func (st IterStats) String() string {
	return fmt.Sprintf("iter %d: %v (stall %v), swapout %d/%dMB, prefetch %d, ondemand %d, passive %d, recompute %d/%v, peak %dMB",
		st.Iter, st.Duration, st.StallTime, st.SwapOutCount, st.SwapOutBytes>>20,
		st.PrefetchCount, st.OnDemandInCount, st.PassiveEvicts,
		st.RecomputeCount, st.RecomputeTime, st.PeakBytes>>20)
}
