package exec

import (
	"testing"

	"capuchin/internal/hw"
)

func TestRegistryHasBaseline(t *testing.T) {
	spec, ok := LookupPolicy("tf-ori")
	if !ok {
		t.Fatal("tf-ori not registered")
	}
	if !spec.GraphAgnostic {
		t.Error("tf-ori must be graph-agnostic")
	}
	p, err := spec.Build(BuildContext{Device: hw.P100()})
	if err != nil {
		t.Fatal(err)
	}
	if _, isNull := p.(NullPolicy); !isNull {
		t.Errorf("tf-ori built %T, want NullPolicy", p)
	}
}

func TestRegistryNamesSortedAndComplete(t *testing.T) {
	names := PolicyNames()
	if len(names) == 0 {
		t.Fatal("no policies registered")
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted/unique: %v", names)
		}
	}
	for _, n := range names {
		if _, ok := LookupPolicy(n); !ok {
			t.Errorf("listed policy %q does not resolve", n)
		}
	}
}

func TestRegistryRejectsDuplicatesAndMalformed(t *testing.T) {
	mustPanic := func(name string, spec PolicySpec) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: RegisterPolicy did not panic", name)
			}
		}()
		RegisterPolicy(spec)
	}
	mustPanic("duplicate", PolicySpec{
		Name:  "tf-ori",
		Build: func(BuildContext) (Policy, error) { return NullPolicy{}, nil },
	})
	mustPanic("no build", PolicySpec{Name: "hollow"})
	mustPanic("no name", PolicySpec{
		Build: func(BuildContext) (Policy, error) { return NullPolicy{}, nil },
	})
}

func TestArenaPolicyNamesLeadWithBaseline(t *testing.T) {
	names := ArenaPolicyNames()
	if len(names) == 0 || names[0] != "tf-ori" {
		t.Fatalf("arena names = %v, want tf-ori first", names)
	}
	for _, n := range names {
		spec, ok := LookupPolicy(n)
		if !ok || !spec.Arena {
			t.Errorf("arena listing includes %q which is not arena-registered", n)
		}
	}
}
