// Concurrency-isolation tests: sessions built from the same model name
// must be fully self-contained, so stepping them from separate goroutines
// (as the bench.Runner does) is race-free and bit-identical to serial
// execution. Run under -race to catch registry or device-spec aliasing.
package exec_test

import (
	"reflect"
	"sync"
	"testing"

	"capuchin/internal/exec"
	"capuchin/internal/graph"
	"capuchin/internal/hw"
	"capuchin/internal/models"
	"capuchin/internal/policy/vdnn"
)

// sessionCase builds one session variant of the shared model.
type sessionCase struct {
	name  string
	build func(t *testing.T) *exec.Session
}

// parallelCases cover the plain framework path and the swap-heavy vDNN
// path, which exercises the transfer streams and host arena concurrently.
func parallelCases() []sessionCase {
	dev := hw.P100().WithMemory(2 * hw.GiB)
	newSession := func(t *testing.T, cfg exec.Config) *exec.Session {
		t.Helper()
		spec, err := models.Get("resnet50")
		if err != nil {
			t.Fatal(err)
		}
		g, err := spec.Build(8, graph.GraphModeOptions())
		if err != nil {
			t.Fatal(err)
		}
		s, err := exec.NewSession(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	return []sessionCase{
		{"null-policy", func(t *testing.T) *exec.Session {
			return newSession(t, exec.Config{Device: dev})
		}},
		{"vdnn", func(t *testing.T) *exec.Session {
			spec, err := models.Get("resnet50")
			if err != nil {
				t.Fatal(err)
			}
			g, err := spec.Build(8, graph.GraphModeOptions())
			if err != nil {
				t.Fatal(err)
			}
			s, err := exec.NewSession(g, exec.Config{
				Device: dev, Policy: vdnn.New(g, vdnn.ConvOnly), CoupledSwap: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			return s
		}},
	}
}

func TestSessionsIsolatedAcrossGoroutines(t *testing.T) {
	const iters = 3
	for _, c := range parallelCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			// Serial references: two independent runs of the same config.
			serial := func() []exec.IterStats {
				st, err := c.build(t).Run(iters)
				if err != nil {
					t.Fatal(err)
				}
				return st
			}
			ref1, ref2 := serial(), serial()

			// The same two runs, stepped from separate goroutines.
			s1, s2 := c.build(t), c.build(t)
			var wg sync.WaitGroup
			var got [2][]exec.IterStats
			var errs [2]error
			for i, s := range []*exec.Session{s1, s2} {
				wg.Add(1)
				go func(i int, s *exec.Session) {
					defer wg.Done()
					got[i], errs[i] = s.Run(iters)
				}(i, s)
			}
			wg.Wait()
			for i, err := range errs {
				if err != nil {
					t.Fatalf("concurrent session %d: %v", i, err)
				}
			}
			if !reflect.DeepEqual(got[0], ref1) {
				t.Errorf("concurrent session 0 diverged from serial run\ngot:  %v\nwant: %v", got[0], ref1)
			}
			if !reflect.DeepEqual(got[1], ref2) {
				t.Errorf("concurrent session 1 diverged from serial run\ngot:  %v\nwant: %v", got[1], ref2)
			}
			if got[0][iters-1].ParamFingerprint != got[1][iters-1].ParamFingerprint {
				t.Error("identically configured sessions reached different parameter fingerprints")
			}
		})
	}
}
