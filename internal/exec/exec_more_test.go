package exec

import (
	"math/rand"
	"testing"

	"capuchin/internal/graph"
	"capuchin/internal/hw"
	"capuchin/internal/ops"
	"capuchin/internal/tensor"
)

// TestWorkspaceFallbackUnderPressure verifies the cuDNN-style algorithm
// degradation: with ample memory a 3x3 stride-1 convolution runs winograd
// (fast, large workspace); under pressure it falls back to implicit GEMM
// and the iteration slows down — the effect behind VGG16's throughput dip
// at its maximum batch (§6.3.2).
func TestWorkspaceFallbackUnderPressure(t *testing.T) {
	build := func() *graph.Graph {
		b := graph.NewBuilder("wstest")
		x := b.Input("data", tensor.Shape{16, 64, 64, 64}, tensor.Float32)
		labels := b.Input("labels", tensor.Shape{16, 10}, tensor.Float32)
		w := b.Variable("w", tensor.Shape{64, 64, 3, 3})
		h := b.Apply1("conv", ops.Conv2D{StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}, x, w)
		h = b.Apply1("gap", ops.Pool{Kind: ops.AvgPoolKind}, h)
		flat := b.Apply1("flatten", ops.Reshape{To: tensor.Shape{16, 64}}, h)
		wf := b.Variable("wf", tensor.Shape{64, 10})
		logits := b.Apply1("fc", ops.MatMul{}, flat, wf)
		loss := b.Apply1("loss", ops.SoftmaxCrossEntropy{}, logits, labels)
		g, err := b.Build(loss, graph.BuildOptions{SkipBackward: true})
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	run := func(mem int64) IterStats {
		s, err := NewSession(build(), Config{Device: device(mem)})
		if err != nil {
			t.Fatal(err)
		}
		st, err := s.RunIteration()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	// Activations: x and the conv output are ~16.7 MiB each; the winograd
	// workspace needs another ~33 MiB. At 512 MiB everything fits; at
	// 56 MiB the workspace does not, forcing implicit GEMM.
	fast := run(512 * hw.MiB)
	slow := run(56 * hw.MiB)
	if slow.Duration <= fast.Duration {
		t.Errorf("no algorithm fallback: %v at 56 MiB vs %v at 512 MiB", slow.Duration, fast.Duration)
	}
}

// TestForwardOnlyGraph checks SkipBackward inference graphs execute.
func TestForwardOnlyGraph(t *testing.T) {
	b := graph.NewBuilder("fwd")
	x := b.Input("data", tensor.Shape{4, 8}, tensor.Float32)
	w := b.Variable("w", tensor.Shape{8, 8})
	h := b.Apply1("fc", ops.MatMul{}, x, w)
	g, err := b.Build(h, graph.BuildOptions{SkipBackward: true})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(g, Config{Device: device(hw.GiB)})
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.RunIteration()
	if err != nil {
		t.Fatal(err)
	}
	if st.Nodes == 0 {
		t.Error("nothing executed")
	}
}

// TestResidentsDiagnostic checks the Residents snapshot.
func TestResidentsDiagnostic(t *testing.T) {
	g := testCNN(t, graph.GraphModeOptions())
	s, err := NewSession(g, Config{Device: device(hw.GiB)})
	if err != nil {
		t.Fatal(err)
	}
	res := s.Residents()
	// Before any iteration only parameters are resident.
	for id := range res {
		tt := g.Tensor(id)
		if tt == nil || !tt.Persistent {
			t.Errorf("non-parameter %s resident before execution", id)
		}
	}
	if len(res) == 0 {
		t.Error("no parameters resident")
	}
}

// randomChain builds a random chain network from a seeded RNG, exercising
// diverse op sequences through the executor.
func randomChain(t *testing.T, seed int64) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder("rand")
	ch := int64(8 * (1 + rng.Intn(3)))
	x := b.Input("data", tensor.Shape{4, ch, 32, 32}, tensor.Float32)
	labels := b.Input("labels", tensor.Shape{4, 10}, tensor.Float32)
	h := x
	depth := 3 + rng.Intn(5)
	for i := 0; i < depth; i++ {
		switch rng.Intn(5) {
		case 0:
			out := int64(8 * (1 + rng.Intn(4)))
			w := b.Variable(randName(rng, "w"), tensor.Shape{out, h.Shape[1], 3, 3})
			h = b.Apply1(randName(rng, "conv"), ops.Conv2D{StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}, h, w)
		case 1:
			h = b.Apply1(randName(rng, "relu"), ops.ReLU{}, h)
		case 2:
			c := h.Shape[1]
			sc := b.Variable(randName(rng, "scale"), tensor.Shape{c})
			of := b.Variable(randName(rng, "offset"), tensor.Shape{c})
			h = b.Apply1(randName(rng, "bn"), ops.BatchNorm{}, h, sc, of)
		case 3:
			h2 := b.Apply1(randName(rng, "gelu"), ops.GELU{}, h)
			h = b.Apply1(randName(rng, "res"), ops.Add{}, h, h2)
		case 4:
			h = b.Apply1(randName(rng, "drop"), ops.Dropout{Rate: 0.1}, h)
		}
	}
	h = b.Apply1("gap", ops.Pool{Kind: ops.AvgPoolKind}, h)
	flat := b.Apply1("flatten", ops.Reshape{To: tensor.Shape{4, h.Shape.Elems() / 4}}, h)
	w := b.Variable("fc_w", tensor.Shape{flat.Shape[1], 10})
	logits := b.Apply1("fc", ops.MatMul{}, flat, w)
	loss := b.Apply1("loss", ops.SoftmaxCrossEntropy{}, logits, labels)
	g, err := b.Build(loss, graph.GraphModeOptions())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func randName(rng *rand.Rand, base string) string {
	const letters = "abcdefghijklmnop"
	return base + "_" + string(letters[rng.Intn(len(letters))]) + string(letters[rng.Intn(len(letters))])
}

// Property: for random networks, execution under severe memory pressure
// with LRU passive eviction produces the same fingerprints as uncapped
// execution, never exceeds capacity, and leaks nothing.
func TestRandomNetworksOracleProperty(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		ref, err := NewSession(randomChain(t, seed), Config{Device: device(4 * hw.GiB)})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want, err := ref.Run(2)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		// Capacity: 40% of observed uncapped peak, floored to fit the
		// largest working set of these small nets.
		cap := ref.Pool().Peak() * 2 / 5
		if cap < 24*hw.MiB {
			cap = 24 * hw.MiB
		}
		s, err := NewSession(randomChain(t, seed), Config{Device: device(cap), Policy: lruPolicy{}})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Iterate manually so the residency invariant — the eviction order
		// mirrors the allocator exactly — is pinned at every iteration
		// boundary of the pressured run.
		var got []IterStats
		var runErr error
		for i := 0; i < 2; i++ {
			st, err := s.RunIteration()
			got = append(got, st)
			if ierr := s.CheckResidencyInvariant(); ierr != nil {
				t.Fatalf("seed %d iter %d: %v", seed, i, ierr)
			}
			if err != nil {
				runErr = err
				break
			}
		}
		if runErr != nil {
			t.Logf("seed %d: capped run failed (%v) — acceptable if the working set exceeds %d", seed, runErr, cap)
			continue
		}
		for i := range got {
			if got[i].ParamFingerprint != want[i].ParamFingerprint {
				t.Errorf("seed %d iter %d: fingerprint diverged", seed, i)
			}
		}
		if s.Pool().Peak() > cap {
			t.Errorf("seed %d: peak %d exceeded capacity %d", seed, s.Pool().Peak(), cap)
		}
		if s.Host().Used() != 0 {
			t.Errorf("seed %d: host memory leaked", seed)
		}
	}
}

// TestEagerRetentionReleasedAtEnd verifies eager-tape tensors are freed at
// the iteration barrier and the next iteration starts clean.
func TestEagerRetentionReleasedAtEnd(t *testing.T) {
	g := testCNN(t, graph.EagerModeOptions())
	s, err := NewSession(g, Config{Device: device(2 * hw.GiB), Mode: EagerMode})
	if err != nil {
		t.Fatal(err)
	}
	base := s.Pool().Used()
	for i := 0; i < 3; i++ {
		if _, err := s.RunIteration(); err != nil {
			t.Fatal(err)
		}
		if got := s.Pool().Used(); got != base {
			t.Fatalf("iter %d: %d bytes still resident after barrier, want %d", i, got, base)
		}
	}
}

// TestStallAccountingNonNegative checks stall bookkeeping sanity under a
// swap-heavy policy.
func TestStallAccountingNonNegative(t *testing.T) {
	g := testCNN(t, graph.GraphModeOptions())
	s, err := NewSession(g, Config{Device: device(128 * hw.MiB), Policy: swapAllPolicy{}})
	if err != nil {
		t.Fatal(err)
	}
	sts, err := s.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range sts {
		if st.StallTime < 0 {
			t.Errorf("negative stall time %v", st.StallTime)
		}
		if st.StallTime > st.Duration {
			t.Errorf("stall %v exceeds duration %v", st.StallTime, st.Duration)
		}
	}
}

// TestAdamOptimizerEndToEnd runs a graph built with the Adam rule: its
// per-parameter state tensors are pre-allocated as persistent memory and
// updates execute normally.
func TestAdamOptimizerEndToEnd(t *testing.T) {
	build := func(rule ops.Optimizer) *graph.Graph {
		b := graph.NewBuilder("adam")
		x := b.Input("data", tensor.Shape{8, 64}, tensor.Float32)
		labels := b.Input("labels", tensor.Shape{8, 10}, tensor.Float32)
		w := b.Variable("w", tensor.Shape{64, 10})
		h := b.Apply1("fc", ops.MatMul{}, x, w)
		loss := b.Apply1("loss", ops.SoftmaxCrossEntropy{}, h, labels)
		g, err := b.Build(loss, graph.BuildOptions{Optimizer: ops.ApplyGradient{Rule: rule}})
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	sgd, err := NewSession(build(ops.SGD), Config{Device: device(hw.GiB)})
	if err != nil {
		t.Fatal(err)
	}
	adam, err := NewSession(build(ops.Adam), Config{Device: device(hw.GiB)})
	if err != nil {
		t.Fatal(err)
	}
	// Adam pre-allocates 3x the parameter memory (weights + two moments).
	if adam.Pool().Used() <= sgd.Pool().Used() {
		t.Errorf("Adam resident %d not above SGD resident %d", adam.Pool().Used(), sgd.Pool().Used())
	}
	stSGD, err := sgd.RunIteration()
	if err != nil {
		t.Fatal(err)
	}
	stAdam, err := adam.RunIteration()
	if err != nil {
		t.Fatal(err)
	}
	if stAdam.Duration <= stSGD.Duration {
		t.Error("Adam update should cost more time than SGD")
	}
}
