package exec

import (
	"fmt"
	"reflect"
	"testing"

	"capuchin/internal/graph"
	"capuchin/internal/hw"
	"capuchin/internal/obs"
	"capuchin/internal/ops"
	"capuchin/internal/sim"
	"capuchin/internal/tensor"
)

// dynCNN is testCNN parameterized by batch size (the "seq" axis of a
// CNN is absent, so dynamic tests drift the batch).
func dynCNN(t *testing.T, batch int64) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder("dyncnn")
	x := b.Input("data", tensor.Shape{batch, 3, 64, 64}, tensor.Float32)
	labels := b.Input("labels", tensor.Shape{batch, 10}, tensor.Float32)
	h := x
	ch := int64(16)
	for i := 0; i < 4; i++ {
		w := b.Variable(fmt.Sprintf("conv%d_w", i), tensor.Shape{ch * 2, h.Shape[1], 3, 3})
		h = b.Apply1(fmt.Sprintf("conv%d", i), ops.Conv2D{StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}, h, w)
		h = b.Apply1(fmt.Sprintf("relu%d", i), ops.ReLU{}, h)
		ch *= 2
	}
	h = b.Apply1("gap", ops.Pool{Kind: ops.AvgPoolKind}, h)
	flat := b.Apply1("flatten", ops.Reshape{To: tensor.Shape{batch, h.Shape.Elems() / batch}}, h)
	w := b.Variable("fc_w", tensor.Shape{flat.Shape[1], 10})
	logits := b.Apply1("fc", ops.MatMul{}, flat, w)
	loss := b.Apply1("loss", ops.SoftmaxCrossEntropy{}, logits, labels)
	g, err := b.Build(loss, graph.GraphModeOptions())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// sched adapts a function to ShapeSchedule.
type sched func(iter int) (int64, int64)

func (f sched) At(iter int) (int64, int64) { return f(iter) }

func dynConfig(t *testing.T, mem int64) DynamicConfig {
	t.Helper()
	return DynamicConfig{
		Base: Config{Device: device(mem), Policy: lruPolicy{}},
		Build: func(batch, seq int64) (*graph.Graph, error) {
			return dynCNN(t, batch), nil
		},
	}
}

func TestDynamicValidation(t *testing.T) {
	cfg := dynConfig(t, 2*hw.GiB)
	cfg.Build = nil
	if _, err := NewDynamicSession(cfg); err == nil {
		t.Error("missing Build accepted")
	}
	cfg = dynConfig(t, 2*hw.GiB)
	if _, err := NewDynamicSession(cfg); err == nil {
		t.Error("missing Schedule accepted")
	}
}

// TestDynamicConstantMatchesStatic is the exec-level differential: a
// dynamic run under a constant schedule must be indistinguishable from
// running the single session directly.
func TestDynamicConstantMatchesStatic(t *testing.T) {
	const iters = 4
	cfg := dynConfig(t, 1*hw.GiB)
	cfg.Schedule = sched(func(int) (int64, int64) { return 8, 0 })
	d, err := NewDynamicSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dynStats, err := d.Run(iters)
	if err != nil {
		t.Fatal(err)
	}

	s, err := NewSession(dynCNN(t, 8), cfg.Base)
	if err != nil {
		t.Fatal(err)
	}
	statStats, err := s.Run(iters)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dynStats, statStats) {
		t.Errorf("constant-schedule dynamic run diverged from static:\n dyn %v\n sta %v", dynStats, statStats)
	}
	ds := d.Stats()
	if ds.Switches != 0 || ds.SessionBuilds != 1 || ds.Signatures != 1 {
		t.Errorf("constant schedule produced structural events: %+v", ds)
	}
}

func TestDynamicSwitchingDeterministicAndCached(t *testing.T) {
	alternate := sched(func(iter int) (int64, int64) {
		if iter/2%2 == 0 {
			return 8, 0
		}
		return 4, 0
	})
	run := func() ([]IterStats, DynamicStats, []BucketStats) {
		cfg := dynConfig(t, 1*hw.GiB)
		cfg.Schedule = alternate
		d, err := NewDynamicSession(cfg)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := d.Run(8)
		if err != nil {
			t.Fatal(err)
		}
		return stats, d.Stats(), d.Buckets()
	}
	a, as, ab := run()
	b, bs, bb := run()
	if !reflect.DeepEqual(a, b) || !reflect.DeepEqual(as, bs) || !reflect.DeepEqual(ab, bb) {
		t.Fatal("dynamic run is not deterministic")
	}
	// ABAB over periods of two: 3 switches, but only 2 sessions built.
	if as.Switches != 3 {
		t.Errorf("switches = %d, want 3", as.Switches)
	}
	if as.SessionBuilds != 2 || as.SessionEvicts != 0 {
		t.Errorf("session builds/evicts = %d/%d, want 2/0", as.SessionBuilds, as.SessionEvicts)
	}
	if as.Signatures != 2 || len(ab) != 2 {
		t.Errorf("signatures = %d (buckets %d), want 2", as.Signatures, len(ab))
	}
	// Iteration numbering is global across sessions.
	for i, st := range a {
		if st.Iter != i {
			t.Errorf("stats[%d].Iter = %d", i, st.Iter)
		}
	}
	// Virtual time is monotonic across switches: total bucket durations
	// are positive and the per-bucket iteration counts add up.
	total := 0
	for _, bk := range ab {
		if bk.Duration <= 0 {
			t.Errorf("bucket %s has non-positive duration", bk.Sig)
		}
		total += bk.Iterations
	}
	if total != 8 {
		t.Errorf("bucket iterations sum to %d, want 8", total)
	}
}

func TestDynamicSessionLRUEviction(t *testing.T) {
	cfg := dynConfig(t, 1*hw.GiB)
	cfg.MaxSessions = 2
	// Three signatures round-robin: the cache can hold only two, so each
	// revisit of an evicted signature rebuilds its session.
	cfg.Schedule = sched(func(iter int) (int64, int64) {
		return int64(4 + 2*(iter%3)), 0
	})
	d, err := NewDynamicSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(9); err != nil {
		t.Fatal(err)
	}
	ds := d.Stats()
	if ds.Signatures != 3 {
		t.Errorf("signatures = %d, want 3", ds.Signatures)
	}
	if ds.SessionEvicts == 0 {
		t.Error("no session evictions with MaxSessions=2 and 3 signatures")
	}
	if ds.SessionBuilds <= 3 {
		t.Errorf("session builds = %d, want rebuilds beyond the initial 3", ds.SessionBuilds)
	}
}

// stubReplanner records the re-planning calls the engine makes.
type stubReplanner struct {
	lruPolicy
	planned     bool
	begins      []string
	hits        map[string]bool
	invalidated []string
}

func (r *stubReplanner) BeginSignature(sig string, env *Env) bool {
	r.begins = append(r.begins, sig)
	return r.hits[sig]
}

func (r *stubReplanner) InvalidatePlan(reason string, env *Env) {
	r.invalidated = append(r.invalidated, reason)
	r.planned = false
}

func (r *stubReplanner) Planned() bool { return r.planned }

func TestDynamicReplannerSignatureFlow(t *testing.T) {
	rp := &stubReplanner{planned: true, hits: map[string]bool{"b8": true}}
	cfg := dynConfig(t, 2*hw.GiB)
	cfg.Base.Policy = rp
	cfg.Schedule = sched(func(iter int) (int64, int64) {
		if iter%2 == 0 {
			return 8, 0
		}
		return 4, 0
	})
	d, err := NewDynamicSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(4); err != nil {
		t.Fatal(err)
	}
	// Every switch (and the initial activation) announces its signature.
	want := []string{"b8", "b4", "b8", "b4"}
	if !reflect.DeepEqual(rp.begins, want) {
		t.Errorf("BeginSignature calls = %v, want %v", rp.begins, want)
	}
	// b8 reports a cached plan; its revisit counts as a plan-cache hit
	// (the initial activation does not).
	if ds := d.Stats(); ds.PlanCacheHits != 1 {
		t.Errorf("plan cache hits = %d, want 1", ds.PlanCacheHits)
	}
}

func TestStaleReason(t *testing.T) {
	cfg := StalenessConfig{}.fill()
	base := driftBaseline{accesses: 100, onDemand: 2, stall: sim.Millisecond}
	ok := IterStats{Accesses: 100, OnDemandInCount: 2, StallTime: sim.Millisecond}
	if r := staleReason(cfg, base, ok); r != "" {
		t.Errorf("steady iteration flagged stale: %q", r)
	}
	// 3% access drift is within the 5% tolerance; 10% is not.
	if r := staleReason(cfg, base, IterStats{Accesses: 103, OnDemandInCount: 2}); r != "" {
		t.Errorf("3%% drift flagged: %q", r)
	}
	if r := staleReason(cfg, base, IterStats{Accesses: 110, OnDemandInCount: 2}); r == "" {
		t.Error("10% access drift not flagged")
	}
	// On-demand surge: >2x the floored baseline and above the minimum count.
	if r := staleReason(cfg, base, IterStats{Accesses: 100, OnDemandInCount: 9}); r == "" {
		t.Error("on-demand surge not flagged")
	}
	if r := staleReason(cfg, base, IterStats{Accesses: 100, OnDemandInCount: 3}); r != "" {
		t.Errorf("mild on-demand uptick flagged: %q", r)
	}
	// Stall surge: far beyond baseline.
	if r := staleReason(cfg, base, IterStats{Accesses: 100, OnDemandInCount: 2, StallTime: 20 * sim.Millisecond}); r == "" {
		t.Error("stall surge not flagged")
	}
}

// TestStaleReasonZeroBaseline is the regression test for the
// zero-baseline misfire: a clean first guided iteration records zero
// stall and zero on-demand swap-ins, and the pre-fix ratio tests then
// flagged the faintest later noise (2ms of stall against a 1ms absolute
// term; 4 on-demand ins against a baseline floored at 1) as a stale
// plan, burning a bounded re-measurement pass on nothing. Both
// baselines are now floored at the configured absolute minimums.
func TestStaleReasonZeroBaseline(t *testing.T) {
	cfg := StalenessConfig{}.fill()

	// Zero-stall baseline: 2ms of stall is noise, not staleness.
	zeroStall := driftBaseline{accesses: 100, onDemand: 2, stall: 0}
	if r := staleReason(cfg, zeroStall, IterStats{Accesses: 100, OnDemandInCount: 2, StallTime: 2 * sim.Millisecond}); r != "" {
		t.Errorf("2ms stall against zero-stall baseline flagged: %q", r)
	}
	// A genuine surge still fires: beyond StallFactor * MinStall.
	if r := staleReason(cfg, zeroStall, IterStats{Accesses: 100, OnDemandInCount: 2, StallTime: 5 * sim.Millisecond}); r == "" {
		t.Error("genuine stall surge over zero baseline not flagged")
	}

	// Zero on-demand baseline: MinOnDemand swap-ins are noise.
	zeroOD := driftBaseline{accesses: 100, onDemand: 0, stall: sim.Millisecond}
	if r := staleReason(cfg, zeroOD, IterStats{Accesses: 100, OnDemandInCount: cfg.MinOnDemand, StallTime: sim.Millisecond}); r != "" {
		t.Errorf("%d on-demand ins against zero baseline flagged: %q", cfg.MinOnDemand, r)
	}
	// A genuine surge still fires: beyond OnDemandFactor * MinOnDemand.
	if r := staleReason(cfg, zeroOD, IterStats{Accesses: 100, OnDemandInCount: 9, StallTime: sim.Millisecond}); r == "" {
		t.Error("genuine on-demand surge over zero baseline not flagged")
	}
}

func TestCheckStalenessPatienceAndBound(t *testing.T) {
	rp := &stubReplanner{planned: true}
	d := &DynamicSession{
		stale:     StalenessConfig{Patience: 2, MaxReplans: 1}.fill(),
		rp:        rp,
		baselines: make(map[string]driftBaseline),
		active:    &dynSession{key: "b8"},
	}
	base := IterStats{Accesses: 100}
	drifted := IterStats{Accesses: 150}
	d.checkStaleness("b8", base) // establishes the baseline
	d.checkStaleness("b8", drifted)
	if len(rp.invalidated) != 0 {
		t.Fatal("invalidated before Patience reached")
	}
	d.checkStaleness("b8", drifted)
	if len(rp.invalidated) != 1 {
		t.Fatalf("invalidations = %d, want 1 after two stale iterations", len(rp.invalidated))
	}
	if _, ok := d.baselines["b8"]; ok {
		t.Error("baseline not cleared on invalidation")
	}
	// MaxReplans caps further invalidations.
	rp.planned = true
	d.checkStaleness("b8", base)
	d.checkStaleness("b8", drifted)
	d.checkStaleness("b8", drifted)
	d.checkStaleness("b8", drifted)
	if len(rp.invalidated) != 1 {
		t.Errorf("invalidations = %d, want 1 (MaxReplans bound)", len(rp.invalidated))
	}
	if d.stats.Invalidations != 1 {
		t.Errorf("stats.Invalidations = %d, want 1", d.stats.Invalidations)
	}
}

// TestDynamicNeutralTracing pins that an untraced dynamic run and a
// traced one produce identical IterStats, and that the traced run's
// decision log records the signature switches.
func TestDynamicNeutralTracing(t *testing.T) {
	alternate := sched(func(iter int) (int64, int64) {
		if iter/2%2 == 0 {
			return 8, 0
		}
		return 4, 0
	})
	run := func(col *obs.Collector) []IterStats {
		cfg := dynConfig(t, 1*hw.GiB)
		if col != nil {
			cfg.Base.Tracer = col
		}
		cfg.Schedule = alternate
		d, err := NewDynamicSession(cfg)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := d.Run(6)
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	col := obs.NewCollector()
	plain := run(nil)
	traced := run(col)
	if !reflect.DeepEqual(plain, traced) {
		t.Error("tracing changed dynamic execution")
	}
	switches := 0
	for _, dec := range col.Decisions() {
		if dec.Action == "shape-switch" {
			switches++
		}
	}
	if switches != 2 {
		t.Errorf("shape-switch decisions = %d, want 2", switches)
	}
}
