package exec

import (
	"fmt"
	"math"

	"capuchin/internal/graph"
	"capuchin/internal/obs"
	"capuchin/internal/sim"
)

// This file is the dynamic workload engine: training where the tensor
// geometry changes between iterations (variable batch sizes, bucketed
// sequence lengths, eager-style shape drift — Capuchin §3). A
// DynamicSession keeps one executor session per shape signature in a
// small LRU, carries virtual time forward across switches so the
// timeline stays monotonic, and — when the policy supports re-planning
// — detects plans gone stale against their measured baseline and
// triggers a bounded re-measurement pass mid-training. Everything is a
// pure function of the configuration: a dynamic run is as deterministic
// as a static one.

// ShapeSchedule yields each iteration's tensor geometry. models.Schedule
// satisfies it; the interface lives here so neither package imports the
// other.
type ShapeSchedule interface {
	// At returns the batch size and sequence length of iteration iter;
	// seq is 0 for workloads without a sequence axis.
	At(iter int) (batch, seq int64)
}

// SigKey formats the canonical shape-signature key of a (batch, seq)
// pair, e.g. "b32" or "b32/s128".
func SigKey(batch, seq int64) string {
	if seq == 0 {
		return fmt.Sprintf("b%d", batch)
	}
	return fmt.Sprintf("b%d/s%d", batch, seq)
}

// Replanner is the optional policy surface for online re-planning
// (core.Capuchin implements it): plans are keyed by shape signature,
// cached across signature switches, and rebuilt from a fresh measured
// pass when invalidated.
type Replanner interface {
	Policy
	// BeginSignature installs the plan state for a signature before its
	// first iteration runs, returning whether a guided plan is active
	// (false schedules a measured pass). Tensor bindings reset.
	BeginSignature(sig string, env *Env) bool
	// InvalidatePlan drops the active signature's plan and schedules a
	// bounded re-measurement pass starting next iteration.
	InvalidatePlan(reason string, env *Env)
	// Planned reports whether a guided plan is currently active.
	Planned() bool
}

// StalenessConfig tunes plan-staleness detection. The zero value means
// defaults; set Disable to turn the detector off.
type StalenessConfig struct {
	Disable bool
	// AccessDrift invalidates when the per-iteration access count
	// deviates from the baseline by more than this fraction (default
	// 0.05). Access counts are graph-structural, so this only fires on a
	// genuine shape/plan mismatch, never on eviction jitter.
	AccessDrift float64
	// OnDemandFactor invalidates when on-demand swap-ins exceed the
	// baseline by this factor (default 2) — the plan's prefetch triggers
	// are firing too late for the running pattern.
	OnDemandFactor float64
	// MinOnDemand is the minimum on-demand swap-in count before the
	// factor test applies (default 4).
	MinOnDemand int
	// StallFactor invalidates when stall time exceeds the baseline by
	// this factor (default 4) and MinStall (default 1ms); 0 keeps the
	// default, negative disables the stall signal.
	StallFactor float64
	MinStall    sim.Time
	// Patience is how many consecutive stale iterations trigger an
	// invalidation (default 2).
	Patience int
	// MaxReplans bounds staleness-triggered re-measurement passes per
	// run (default 8).
	MaxReplans int
}

func (sc StalenessConfig) fill() StalenessConfig {
	if sc.AccessDrift == 0 {
		sc.AccessDrift = 0.05
	}
	if sc.OnDemandFactor == 0 {
		sc.OnDemandFactor = 2
	}
	if sc.MinOnDemand == 0 {
		sc.MinOnDemand = 4
	}
	if sc.StallFactor == 0 {
		sc.StallFactor = 4
	}
	if sc.MinStall == 0 {
		sc.MinStall = sim.Millisecond
	}
	if sc.Patience == 0 {
		sc.Patience = 2
	}
	if sc.MaxReplans == 0 {
		sc.MaxReplans = 8
	}
	return sc
}

// DynamicConfig configures a DynamicSession.
type DynamicConfig struct {
	// Base is the per-session executor configuration; its Policy is
	// shared across all signatures (a Replanner re-keys its plan per
	// signature; stateless policies just run).
	Base Config
	// Build constructs the graph for one shape signature.
	Build func(batch, seq int64) (*graph.Graph, error)
	// Schedule yields each iteration's shape.
	Schedule ShapeSchedule
	// MaxSessions bounds the per-signature session cache (default 4).
	MaxSessions int
	// Staleness tunes the plan-staleness detector.
	Staleness StalenessConfig
}

// DynamicStats counts the dynamic engine's structural events.
type DynamicStats struct {
	Iterations    int
	Signatures    int // distinct signatures seen
	SessionBuilds int // sessions constructed (including LRU rebuild)
	SessionEvicts int
	Switches      int // signature changes after the first
	PlanCacheHits int // switches resolved by a cached plan
	Replans       int // plan builds after the first (re-measured passes)
	Invalidations int // staleness-triggered invalidations
}

// BucketStats aggregates per-signature execution statistics.
type BucketStats struct {
	Sig        string
	Batch, Seq int64
	Iterations int
	// Measured counts this bucket's iterations run in measured or
	// re-measured (passive) mode.
	Measured   int
	Duration   sim.Time
	Stall      sim.Time
	PeakBytes  int64
	OnDemandIn int
	Recomputes int
}

// driftBaseline is the reference point staleness is measured against:
// the first guided iteration after a signature's plan was built.
type driftBaseline struct {
	accesses int
	onDemand int
	stall    sim.Time
}

// DynamicSession executes a shape schedule over per-signature executor
// sessions. It is not safe for concurrent use, mirroring Session.
type DynamicSession struct {
	cfg         DynamicConfig
	stale       StalenessConfig
	maxSessions int

	sessions map[string]*dynSession
	order    []string // LRU, least recently used first
	active   *dynSession

	rp            Replanner // nil when the policy cannot re-plan
	plannedEver   bool
	baselines     map[string]driftBaseline
	staleStreak   int
	replansIssued int

	iter        int
	stats       DynamicStats
	buckets     map[string]*BucketStats
	bucketOrder []string
}

type dynSession struct {
	key        string
	batch, seq int64
	s          *Session
}

// NewDynamicSession validates the configuration and prepares the engine;
// the first session is built lazily on the first iteration, so shape
// errors surface as run errors just like static OOM does.
func NewDynamicSession(cfg DynamicConfig) (*DynamicSession, error) {
	if cfg.Build == nil {
		return nil, fmt.Errorf("exec: dynamic: no Build function")
	}
	if cfg.Schedule == nil {
		return nil, fmt.Errorf("exec: dynamic: no shape schedule")
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 4
	}
	d := &DynamicSession{
		cfg:         cfg,
		stale:       cfg.Staleness.fill(),
		maxSessions: cfg.MaxSessions,
		sessions:    make(map[string]*dynSession),
		baselines:   make(map[string]driftBaseline),
		buckets:     make(map[string]*BucketStats),
	}
	d.rp, _ = cfg.Base.Policy.(Replanner)
	return d, nil
}

// RunIteration executes the next scheduled iteration, switching (and if
// needed building) the signature's session first.
func (d *DynamicSession) RunIteration() (IterStats, error) {
	batch, seq := d.cfg.Schedule.At(d.iter)
	key := SigKey(batch, seq)
	if d.active == nil || d.active.key != key {
		if err := d.switchTo(key, batch, seq); err != nil {
			return IterStats{}, err
		}
	}
	planBefore := d.rp != nil && d.rp.Planned()
	st, err := d.active.s.RunIteration()
	st.Iter = d.iter
	d.iter++
	d.stats.Iterations++
	d.recordBucket(key, batch, seq, planBefore, st)
	if err != nil {
		return st, err
	}
	if d.rp != nil && !planBefore && d.rp.Planned() {
		// A measured pass just completed. The first plan of the run is
		// the static regime's plan build and stays silent; later ones
		// are genuine online re-plans.
		if d.plannedEver {
			d.stats.Replans++
			d.active.s.decide(obs.Decision{
				Action: "re-plan",
				Reason: "re-measured pass complete; plan rebuilt for signature " + key,
			})
		}
		d.plannedEver = true
	}
	if planBefore {
		d.checkStaleness(key, st)
	}
	return st, nil
}

// Run executes n iterations, stopping at the first failure (the failed
// iteration's stats are included, mirroring Session.Run).
func (d *DynamicSession) Run(n int) ([]IterStats, error) {
	stats := make([]IterStats, 0, n)
	for i := 0; i < n; i++ {
		st, err := d.RunIteration()
		stats = append(stats, st)
		if err != nil {
			return stats, err
		}
	}
	return stats, nil
}

// switchTo makes key's session active, constructing it (and evicting the
// least recently used one beyond the cache bound) when absent.
func (d *DynamicSession) switchTo(key string, batch, seq int64) error {
	prev := d.active
	prevNow := d.now()
	e, ok := d.sessions[key]
	if !ok {
		g, err := d.cfg.Build(batch, seq)
		if err != nil {
			return fmt.Errorf("exec: dynamic: building graph for %s: %w", key, err)
		}
		s, err := NewSession(g, d.cfg.Base)
		if err != nil {
			return fmt.Errorf("exec: dynamic: session for %s: %w", key, err)
		}
		e = &dynSession{key: key, batch: batch, seq: seq, s: s}
		d.sessions[key] = e
		d.stats.SessionBuilds++
		if len(d.sessions) > d.maxSessions {
			victim := d.order[0]
			d.order = d.order[1:]
			delete(d.sessions, victim)
			d.stats.SessionEvicts++
		}
	}
	d.touch(key)
	d.active = e
	// Carry virtual time forward: sessions idle while other shapes run,
	// so their streams advance to the global now and the unified
	// timeline stays monotonic.
	advanceSession(e.s, prevNow)
	if d.rp != nil {
		hit := d.rp.BeginSignature(key, &Env{s: e.s})
		if prev != nil && hit {
			d.stats.PlanCacheHits++
		}
	}
	if prev != nil {
		d.stats.Switches++
		d.staleStreak = 0
		e.s.decide(obs.Decision{
			Action: "shape-switch",
			Reason: prev.key + " -> " + key,
		})
	}
	return nil
}

// checkStaleness compares a guided iteration against its signature's
// baseline and invalidates the plan after Patience consecutive stale
// iterations. The first guided iteration after a (re)build becomes the
// baseline: in a steady deterministic regime every later iteration
// matches it exactly, so the detector is silent unless the workload —
// or an injected fault window — genuinely shifts the pattern.
func (d *DynamicSession) checkStaleness(key string, st IterStats) {
	if d.stale.Disable || d.rp == nil || !d.rp.Planned() {
		return
	}
	base, ok := d.baselines[key]
	if !ok {
		d.baselines[key] = driftBaseline{accesses: st.Accesses, onDemand: st.OnDemandInCount, stall: st.StallTime}
		return
	}
	reason := staleReason(d.stale, base, st)
	if reason == "" {
		d.staleStreak = 0
		return
	}
	d.staleStreak++
	if d.staleStreak < d.stale.Patience || d.replansIssued >= d.stale.MaxReplans {
		return
	}
	d.rp.InvalidatePlan(reason, &Env{s: d.active.s})
	delete(d.baselines, key)
	d.stats.Invalidations++
	d.replansIssued++
	d.staleStreak = 0
}

// staleReason reports why an iteration diverges from its baseline, or
// "" when it tracks the plan's expectations.
func staleReason(cfg StalenessConfig, base driftBaseline, st IterStats) string {
	if base.accesses > 0 {
		drift := math.Abs(float64(st.Accesses-base.accesses)) / float64(base.accesses)
		if drift > cfg.AccessDrift {
			return fmt.Sprintf("access pattern drifted %.1f%% from measured baseline (%d vs %d accesses)",
				drift*100, st.Accesses, base.accesses)
		}
	}
	// A clean first guided iteration records zero on-demand swap-ins and
	// zero stall. Ratios against a zero (or near-zero) baseline misfire on
	// the first hint of noise, so both baselines are floored at the
	// configured absolute minimums: divergence below MinOnDemand /
	// StallFactor*MinStall is never stale, whatever the baseline was.
	baseOD := base.onDemand
	if baseOD < cfg.MinOnDemand {
		baseOD = cfg.MinOnDemand
	}
	if baseOD < 1 {
		baseOD = 1
	}
	if st.OnDemandInCount >= cfg.MinOnDemand && float64(st.OnDemandInCount) > cfg.OnDemandFactor*float64(baseOD) {
		return fmt.Sprintf("on-demand swap-ins %dx baseline (%d vs %d); prefetch triggers misfiring",
			st.OnDemandInCount/baseOD, st.OnDemandInCount, base.onDemand)
	}
	baseStall := base.stall
	if baseStall < cfg.MinStall {
		baseStall = cfg.MinStall
	}
	if cfg.StallFactor > 0 && st.StallTime > cfg.MinStall &&
		float64(st.StallTime) > cfg.StallFactor*float64(baseStall) {
		return fmt.Sprintf("stall time %v vs baseline %v; plan no longer hides transfers",
			st.StallTime, base.stall)
	}
	return ""
}

// recordBucket folds one iteration into its signature's aggregate.
func (d *DynamicSession) recordBucket(key string, batch, seq int64, planBefore bool, st IterStats) {
	b, ok := d.buckets[key]
	if !ok {
		b = &BucketStats{Sig: key, Batch: batch, Seq: seq}
		d.buckets[key] = b
		d.bucketOrder = append(d.bucketOrder, key)
		d.stats.Signatures++
	}
	b.Iterations++
	if d.rp != nil && !planBefore {
		b.Measured++
	}
	b.Duration += st.Duration
	b.Stall += st.StallTime
	if st.PeakBytes > b.PeakBytes {
		b.PeakBytes = st.PeakBytes
	}
	b.OnDemandIn += st.OnDemandInCount
	b.Recomputes += st.RecomputeCount
}

// touch moves key to the most-recently-used end of the session LRU.
func (d *DynamicSession) touch(key string) {
	for i, k := range d.order {
		if k == key {
			d.order = append(d.order[:i], d.order[i+1:]...)
			break
		}
	}
	d.order = append(d.order, key)
}

// now is the global virtual time: the furthest stream of the active
// session (sessions are quiescent at iteration boundaries).
func (d *DynamicSession) now() sim.Time {
	if d.active == nil {
		return 0
	}
	s := d.active.s
	t := s.compute.AvailableAt()
	for _, st := range []*sim.Stream{s.h2d, s.d2h, s.cpu} {
		if st != nil && st.AvailableAt() > t {
			t = st.AvailableAt()
		}
	}
	return t
}

// advanceSession fast-forwards a session's streams to the global time.
func advanceSession(s *Session, t sim.Time) {
	if t == 0 {
		return
	}
	for _, st := range []*sim.Stream{s.compute, s.h2d, s.d2h, s.cpu} {
		if st != nil {
			st.AdvanceTo(t)
		}
	}
}

// Stats reports the engine's structural counters.
func (d *DynamicSession) Stats() DynamicStats { return d.stats }

// Buckets reports per-signature aggregates in first-seen order.
func (d *DynamicSession) Buckets() []BucketStats {
	out := make([]BucketStats, 0, len(d.bucketOrder))
	for _, key := range d.bucketOrder {
		out = append(out, *d.buckets[key])
	}
	return out
}

// Active exposes the current signature's session (span and snapshot
// access for reports); nil before the first iteration.
func (d *DynamicSession) Active() *Session {
	if d.active == nil {
		return nil
	}
	return d.active.s
}
