package exec

import (
	"capuchin/internal/hw"
	"capuchin/internal/sim"
)

// This file is the executor's view of collective-communication traffic in
// a data-parallel cluster. The cluster scheduler (internal/cluster)
// predicts when gradient all-reduce shards will occupy each replica's
// host link and publishes those intervals as CommWindows; the executor
// then (a) always degrades transfers that overlap a window — contention
// is physics, it applies whether or not the policy is aware of it — and
// (b) when Config.CommAware is set, defers a swap transfer past a window
// whenever finishing at full bandwidth after the all-reduce beats
// contending with it. The decision audit records the comm-window input
// of every adjusted action.

// CommWindow is one interval during which collective traffic occupies
// this replica's link. Slowdown is the bandwidth degradation factor a
// concurrent swap transfer experiences inside the window (2 = fair
// time-sharing with the all-reduce shard).
type CommWindow struct {
	Start, End sim.Time
	Slowdown   float64
}

// CommModel answers point-in-time queries about pending collective
// traffic on this replica's link. Implementations must be deterministic
// functions of virtual time. nil means an isolated device: no collective
// traffic ever.
type CommModel interface {
	// WindowAt reports the communication window covering t, if any.
	WindowAt(t sim.Time) (CommWindow, bool)
}

// commSlowdownAt reports the collective-traffic slowdown covering t
// (1 = none).
func (s *Session) commSlowdownAt(t sim.Time) (CommWindow, bool) {
	if s.cfg.Comm == nil {
		return CommWindow{}, false
	}
	w, ok := s.cfg.Comm.WindowAt(t)
	if !ok || w.Slowdown <= 1 {
		return CommWindow{}, false
	}
	return w, true
}

// linkSlowdown combines every source of link-bandwidth degradation at
// time t: injected fault windows and all-reduce contention. The larger
// factor wins — both flows contend for the same wire, and the model
// keeps the worst one rather than stacking them.
func (s *Session) linkSlowdown(at sim.Time) float64 {
	f := s.inj.LinkSlowdown(at)
	if w, ok := s.commSlowdownAt(at); ok && w.Slowdown > f {
		f = w.Slowdown
	}
	return f
}

// deferForComm implements the comm-aware scheduling rule for one swap
// transfer: if the transfer would start inside an all-reduce window, and
// waiting for the window to drain then running at full bandwidth
// completes earlier than contending with the collective, the transfer's
// earliest start is pushed to the window's end. The returned window (ok)
// reports the comm-window input consulted, for the decision audit; the
// adjustment never increases the completion time, so comm-aware
// scheduling is never slower than comm-oblivious for any single
// transfer. Without CommAware the earliest time passes through untouched
// and only the physics (linkSlowdown) applies.
func (s *Session) deferForComm(st *sim.Stream, link hw.Link, bytes int64, earliest sim.Time) (adjusted sim.Time, w CommWindow, ok bool) {
	if !s.cfg.CommAware || s.cfg.Comm == nil {
		return earliest, CommWindow{}, false
	}
	start := sim.MaxTime(st.AvailableAt(), earliest)
	w, ok = s.commSlowdownAt(start)
	if !ok {
		return earliest, CommWindow{}, false
	}
	contended := start + link.DegradedTransferTime(bytes, s.linkSlowdown(start))
	deferred := w.End + link.DegradedTransferTime(bytes, s.linkSlowdown(w.End))
	if deferred < contended {
		return w.End, w, true
	}
	return earliest, w, true
}

// AdvanceTo stalls every stream of the session until t if t is in its
// future — the cluster's gradient-barrier synchronization point, and the
// dynamic engine's fast-forward on signature switches.
func (s *Session) AdvanceTo(t sim.Time) {
	for _, st := range []*sim.Stream{s.compute, s.h2d, s.d2h, s.cpu} {
		if st != nil {
			st.AdvanceTo(t)
		}
	}
}

// GradEvent records the production of one gradient tensor: the virtual
// time its producing operation finished and its size. The cluster
// scheduler coalesces the per-iteration gradient schedule into fusion
// buckets and all-reduces each bucket as one collective.
type GradEvent struct {
	At    sim.Time
	Bytes int64
}

// GradSchedule returns the gradient production events of the last
// executed iteration, in production order. Empty for graphs without
// parameter updates.
func (s *Session) GradSchedule() []GradEvent {
	out := make([]GradEvent, len(s.gradEvents))
	copy(out, s.gradEvents)
	return out
}
