package exec

import (
	"errors"
	"fmt"

	"capuchin/internal/fault"
	"capuchin/internal/graph"
	"capuchin/internal/memory"
	"capuchin/internal/obs"
	"capuchin/internal/ops"
	"capuchin/internal/sim"
	"capuchin/internal/tensor"
)

// maxReplayDepth bounds recomputation recursion; real lineages are bounded
// by forward-graph depth.
const maxReplayDepth = 10000

// maxSpuriousAllocRetries bounds consecutive injected allocation failures
// absorbed per allocate call, so even a 100% injection rate cannot
// livelock the recovery loop.
const maxSpuriousAllocRetries = 4

// RunIteration executes one training iteration and returns its statistics.
// On out-of-memory failure the returned error matches ErrIterationOOM.
func (s *Session) RunIteration() (IterStats, error) {
	env := &s.env
	s.stats = IterStats{Iter: s.iter}
	s.startTime = s.now()
	s.penalty = 0
	s.defErr = nil
	s.gradEvents = s.gradEvents[:0]

	// Per-iteration reference counts: one per scheduled use, restored from
	// the static per-graph analysis computed once in initTables (final-read
	// positions, the update barrier and eager-tape retention are static and
	// need no per-iteration reset).
	copy(s.refs, s.refsInit)

	s.policy.BeginIteration(s.iter, env)
	var runErr error
	for _, n := range s.g.Nodes {
		if err := s.executeNode(n, env); err != nil {
			runErr = fmt.Errorf("node %s: %w", n.ID, err)
			break
		}
	}
	if err := s.endIteration(env); err != nil && runErr == nil {
		runErr = err
	}
	s.policy.EndIteration(s.iter, env)

	st := s.stats
	st.Duration = s.now() - s.startTime
	st.PeakBytes = s.pool.Peak()
	s.iter++
	return st, runErr
}

// Run executes n iterations, returning per-iteration stats. It stops at
// the first failure.
func (s *Session) Run(n int) ([]IterStats, error) {
	stats := make([]IterStats, 0, n)
	for i := 0; i < n; i++ {
		st, err := s.RunIteration()
		stats = append(stats, st)
		if err != nil {
			return stats, err
		}
	}
	return stats, nil
}

// runTransfer issues one logical PCIe transfer on st, retrying injected
// DMA aborts with exponential virtual-time backoff. A failed attempt
// occupies the link for half its duration (the abort point), then the next
// attempt waits out the backoff. Mandatory transfers (passive evictions,
// on-demand swap-ins) go through here; proactive ones fail fast instead.
// Returns the completion time of the successful attempt, or a
// *TransferError after the retry budget is spent.
//
// kind names the transfer class ("swapout", "ondemand", ...); the
// human-readable "kind key" label is built only when a tracer or span
// recording will actually observe it, so the steady untraced path never
// concatenates strings.
func (s *Session) runTransfer(dir fault.Direction, st *sim.Stream, kind, key string, bytes int64, earliest sim.Time) (sim.Time, error) {
	label := kind
	if s.tr != nil || st.Recording() {
		label = kind + " " + key
	}
	link := s.dev.H2D
	if dir == fault.D2H {
		link = s.dev.D2H
	}
	attempts := 1
	if s.inj.Enabled() {
		attempts = s.inj.Plan().TransferRetries() + 1
	}
	// Comm-aware rule: start after a pending all-reduce window when that
	// completes the transfer earlier than contending with it.
	if adj, w, ok := s.deferForComm(st, link, bytes, earliest); ok && adj != earliest {
		earliest = adj
		if s.tr != nil {
			s.decide(obs.Decision{
				Tensor: key, Action: "comm-defer", Bytes: bytes,
				Reason:       "deferred " + label + " past a pending all-reduce window (earlier completion than contending)",
				CommSlowdown: w.Slowdown, CommUntil: w.End,
			})
		}
		if s.met != nil {
			s.met.Add("comm/defer", 1)
		}
	}
	queued := earliest
	for attempt := 0; ; attempt++ {
		start := sim.MaxTime(st.AvailableAt(), earliest)
		dur := link.DegradedTransferTime(bytes, s.linkSlowdown(start))
		if !s.inj.TransferFails(dir, key) {
			tStart, end := st.Run(label, earliest, dur)
			if s.tr != nil {
				s.tr.Emit(obs.Event{
					Kind: obs.KindSpan, Cat: "transfer", Name: label, Lane: st.Name(),
					Start: tStart, End: end, Queued: queued, Iter: s.iter,
					Tensor: key, Bytes: bytes,
				})
			}
			if s.met != nil {
				s.met.Observe("transfer/"+st.Name(), end-tStart)
				s.met.Observe("transfer-queue/"+st.Name(), tStart-queued)
			}
			return end, nil
		}
		s.stats.TransferFaults++
		failStart, failEnd := st.Run(label+" !fault", earliest, dur/2)
		if s.tr != nil {
			s.tr.Emit(obs.Event{
				Kind: obs.KindSpan, Cat: "transfer", Name: label + " !fault", Lane: st.Name(),
				Start: failStart, End: failEnd, Queued: queued, Iter: s.iter,
				Tensor: key, Bytes: bytes, Detail: "aborted",
			})
			s.laneInstant("fault", "dma-abort", st.Name(), key, failEnd)
		}
		if s.met != nil {
			s.met.Add("faults/transfer", 1)
		}
		if attempt+1 >= attempts {
			return 0, &TransferError{Dir: dir, TensorID: key, Bytes: bytes, Attempts: attempt + 1, GaveUpAt: failEnd}
		}
		s.stats.TransferRetries++
		if s.tr != nil {
			s.laneInstant("fault", "retry", st.Name(), key, failEnd)
		}
		earliest = failEnd + sim.Backoff(s.inj.Plan().Backoff(), attempt)
	}
}

// spikeKernel applies an injected kernel latency spike to dur, recording
// the extra time it cost.
func (s *Session) spikeKernel(nodeID string, dur sim.Time) sim.Time {
	f := s.inj.KernelSpike(nodeID)
	if f <= 1 {
		return dur
	}
	extra := sim.Time(float64(dur) * (f - 1))
	s.stats.KernelSpikes++
	s.stats.SpikeTime += extra
	if s.tr != nil {
		s.laneInstant("fault", "kernel-spike", "compute", nodeID, s.now())
	}
	if s.met != nil {
		s.met.Add("faults/kernel-spike", 1)
	}
	return dur + extra
}

// executeNode runs one scheduled node: residency, allocation, algorithm
// choice, kernel execution, access reporting and deallocation.
func (s *Session) executeNode(n *graph.Node, env *Env) error {
	if _, isVar := n.Op.(ops.Variable); isVar {
		return nil // parameters are pre-resident; declaration costs nothing
	}
	s.stats.Nodes++

	pinBase := s.pinBase()
	s.pinAll(n.Inputs)
	s.pinAll(n.Outputs)
	defer s.unpinTo(pinBase)

	// vDNN-style coupled execution: wait for all outstanding swap-outs
	// before issuing the next layer (§3.1, Fig. 1).
	if s.cfg.CoupledSwap {
		if err := s.drainSwapOuts(); err != nil {
			return err
		}
	}

	issueAt := s.now()
	deps := issueAt
	// Eager mode: the CPU dispatch stream serializes ahead of the kernel.
	if s.cpu != nil {
		label := "dispatch"
		if s.tr != nil || s.cpu.Recording() {
			label = "dispatch " + n.ID
		}
		cpuStart, cpuEnd := s.cpu.Run(label, 0, s.dev.EagerDispatch)
		if s.tr != nil {
			s.tr.Emit(obs.Event{
				Kind: obs.KindSpan, Cat: "dispatch", Name: "dispatch " + n.ID,
				Lane: "cpu", Start: cpuStart, End: cpuEnd, Iter: s.iter, Node: n.ID,
			})
		}
		deps = sim.MaxTime(deps, cpuEnd)
	}
	dispatchReady := deps

	// Materialize inputs, collecting per-input stall information for the
	// policy's feedback loop. The collection buffers live on the session
	// and are reused across nodes (executeNode never nests).
	stalls := s.scStalls[:0]
	inflight := s.scInflight[:0]
	for _, in := range n.Inputs {
		ready, wasInFlight, err := s.materialize(in, env)
		if err != nil {
			return err
		}
		var st sim.Time
		if ready > issueAt {
			st = ready - issueAt
		}
		stalls = append(stalls, st)
		inflight = append(inflight, wasInFlight)
		deps = sim.MaxTime(deps, ready)
	}
	s.scStalls, s.scInflight = stalls, inflight

	// Allocate outputs.
	for _, out := range n.Outputs {
		if out.Persistent {
			continue
		}
		a, err := s.allocate(out.Bytes(), env)
		if err != nil {
			return err
		}
		out.Alloc = a
		if err := s.becomeResident(out, "produce"); err != nil {
			return err
		}
		if s.tr != nil {
			s.memEvent("alloc", "produce", out.ID, out.Bytes(), s.now())
		}
	}

	// Algorithm choice: fastest whose workspace fits right now, mirroring
	// cuDNN's workspace-limited algorithm selection (§2.1). Memory
	// pressure silently degrades convolutions to slower algorithms — the
	// VGG16 effect of §6.3.2.
	algo, wsAlloc, err := s.chooseAlgorithm(n)
	if err != nil {
		return err
	}

	dur := s.spikeKernel(n.ID, algo.Duration)
	if s.trackCost > 0 {
		dur += sim.Time(len(n.Inputs)+len(n.Outputs)) * s.trackCost
	}
	// Stalls inserted during materialization/allocation already advanced
	// the compute stream (and were charged to penalty there); only the
	// remaining wait on transfer dependencies is exposed here.
	preRun := sim.MaxTime(s.now(), dispatchReady)
	start, end := s.compute.Run(n.ID, deps, dur)
	s.exposedStall(preRun, start)
	if s.tr != nil {
		s.tr.Emit(obs.Event{
			Kind: obs.KindSpan, Cat: "kernel", Name: n.ID, Lane: "compute",
			Start: start, End: end, Iter: s.iter, Node: n.ID,
		})
	}
	if s.met != nil {
		s.met.Observe("kernel", dur)
	}
	if wsAlloc != nil {
		if err := s.pool.Free(wsAlloc); err != nil {
			return invariant("free-workspace", "", err)
		}
		if s.tr != nil {
			s.memEvent("free", "workspace", "", wsAlloc.Size, s.now())
		}
	}

	// Produce fingerprints: the correctness oracle.
	inFPs := s.scFPs[:0]
	for _, in := range n.Inputs {
		if in.Fingerprint == 0 {
			return invariant("fingerprint", in.ID, fmt.Errorf("input consumed with empty fingerprint (residency bug)"))
		}
		inFPs = append(inFPs, in.Fingerprint)
	}
	s.scFPs = inFPs
	for i, out := range n.Outputs {
		out.Fingerprint = tensor.ComputeFingerprint(n.ID, i, inFPs)
	}
	if _, isUpdate := n.Op.(ops.ApplyGradient); isUpdate {
		// In-place variable update: fold the gradient into the weight's
		// fingerprint chain.
		v := n.Inputs[0]
		v.Fingerprint = tensor.ComputeFingerprint(n.ID, -1, []uint64{v.Fingerprint, n.Inputs[1].Fingerprint})
	}
	if len(n.Outputs) > 0 && n.Outputs[0] == s.g.Loss {
		s.stats.LossFingerprint = n.Outputs[0].Fingerprint
	}
	// Gradient schedule for the cluster's all-reduce planner: record when
	// each gradient tensor materializes. Bookkeeping only.
	for _, out := range n.Outputs {
		if s.gradIDs[out.Idx] {
			s.gradEvents = append(s.gradEvents, GradEvent{At: end, Bytes: out.Bytes()})
		}
	}

	// Report accesses: reads at op start, produces at op end. Policy
	// actions triggered by these accesses anchor at op end — the delayed
	// asynchronous operation of §5.4.
	s.actionAnchor = end
	for i, in := range n.Inputs {
		s.reportAccess(in, Read, start, stalls[i], inflight[i], n.ID, env)
	}
	for _, out := range n.Outputs {
		s.reportAccess(out, Produce, end, 0, false, n.ID, env)
	}

	// Reference counting: release dead tensors at op end.
	for _, in := range n.Inputs {
		if in.Persistent {
			continue
		}
		s.refs[in.Idx]--
		if s.refs[in.Idx] == 0 && !s.retained[in.Idx] {
			if err := s.release(in, end, env); err != nil {
				return err
			}
		}
	}
	for _, out := range n.Outputs {
		if !out.Persistent && s.refs[out.Idx] == 0 && !s.retained[out.Idx] {
			if err := s.release(out, end, env); err != nil {
				return err
			}
		}
	}
	// Policy actions run inside bool-returning Env methods; an invariant
	// violation raised there is parked in defErr and fails the iteration
	// at this node boundary.
	if s.defErr != nil {
		err := s.defErr
		s.defErr = nil
		return err
	}
	return nil
}

// chooseAlgorithm picks the fastest algorithm whose workspace can be
// allocated, falling back to the terminal zero-workspace variant. The
// candidate list is a pure function of the device and the node's input
// shapes, both fixed for the session's lifetime, so it is computed once
// per node position and served from algoCache afterwards.
func (s *Session) chooseAlgorithm(n *graph.Node) (ops.Algorithm, *memory.Allocation, error) {
	algos := s.algoCache[n.Pos]
	if algos == nil {
		inShapes := make([]tensor.Shape, len(n.Inputs))
		for i, in := range n.Inputs {
			inShapes[i] = in.Shape
		}
		algos = n.Op.Algorithms(s.dev, inShapes)
		s.algoCache[n.Pos] = algos
	}
	for _, a := range algos {
		if a.Workspace == 0 {
			return a, nil, nil
		}
		if err := s.applyDueFrees(s.now()); err != nil {
			return ops.Algorithm{}, nil, err
		}
		if ws := s.pool.TryAlloc(a.Workspace); ws != nil {
			if s.tr != nil {
				s.memEvent("alloc", "workspace", "", a.Workspace, s.now())
			}
			return a, ws, nil
		}
	}
	return algos[len(algos)-1], nil, nil
}

// reportAccess updates access bookkeeping and notifies the policy.
func (s *Session) reportAccess(t *tensor.Tensor, kind AccessKind, at sim.Time, stall sim.Time, inflight bool, nodeID string, env *Env) {
	s.stats.Accesses++
	count := t.Touch(at - s.penalty)
	s.touchLRU(t)
	s.policy.OnAccess(Access{
		Tensor:   t,
		Kind:     kind,
		Count:    count,
		At:       at - s.penalty,
		Raw:      at,
		Stall:    stall,
		InFlight: inflight,
		NodeID:   nodeID,
		Iter:     s.iter,
	}, env)
}

// release frees a dead tensor and reports the deallocation to the policy.
func (s *Session) release(t *tensor.Tensor, at sim.Time, env *Env) error {
	switch t.Status {
	case tensor.In:
		if err := s.freeDevice(t, tensor.Freed, "release"); err != nil {
			return err
		}
		if s.tr != nil {
			s.memEvent("free", "dead", t.ID, t.Bytes(), at)
		}
	case tensor.Out:
		if s.host.HoldsIdx(int(t.Idx)) {
			if err := s.host.ReleaseIdx(int(t.Idx), t.ID); err != nil {
				return invariant("release", t.ID, err)
			}
		}
		s.dropLRU(t)
		if err := t.TransitionTo(tensor.Freed); err != nil {
			return invariant("release", t.ID, err)
		}
	case tensor.Recompute:
		s.dropLRU(t)
		if err := t.TransitionTo(tensor.Freed); err != nil {
			return invariant("release", t.ID, err)
		}
	default:
		// SwappingOut/SwappingIn: an in-flight transfer owns the buffer;
		// the pending completion or the iteration barrier cleans up.
		return nil
	}
	s.stats.Accesses++
	s.policy.OnAccess(Access{
		Tensor: t,
		Kind:   Dealloc,
		Count:  t.AccessCount,
		At:     at - s.penalty,
		Raw:    at,
		NodeID: "",
		Iter:   s.iter,
	}, env)
	return nil
}

// materialize ensures a scheduled input is readable on device, returning
// when it becomes ready and whether it was mid-swap-in.
func (s *Session) materialize(t *tensor.Tensor, env *Env) (sim.Time, bool, error) {
	ready, inflight, handled, err := s.ensureOnDevice(t, env, true)
	if err != nil || handled {
		return ready, inflight, err
	}
	// Recompute path (status Recompute, or Freed via lineage).
	ready, err = s.recompute(t, env)
	return ready, false, err
}

// ensureOnDevice handles the residency states that do not require
// recomputation. handled=false means the tensor needs lineage replay.
func (s *Session) ensureOnDevice(t *tensor.Tensor, env *Env, countStats bool) (ready sim.Time, inflight bool, handled bool, err error) {
	now := s.now()
	switch t.Status {
	case tensor.In, tensor.SwappingOut:
		// Readable on device; a tensor mid-swap-out stays readable and
		// its host copy covers the later re-access (§5.3).
		return now, false, true, nil
	case tensor.SwappingIn:
		var done sim.Time
		if s.swapInOn[t.Idx] {
			done = s.swapInAt[t.Idx]
			s.swapInClear(t.Idx)
		}
		if err := s.landSwapIn(t, "finish-swapin"); err != nil {
			return 0, false, true, err
		}
		return sim.MaxTime(done, now), done > now, true, nil
	case tensor.Out:
		// Access failure: on-demand swap-in (§5.2 passive mode).
		a, aerr := s.allocate(t.Bytes(), env)
		if aerr != nil {
			return 0, false, true, aerr
		}
		t.Alloc = a
		if err := t.TransitionTo(tensor.SwappingIn); err != nil {
			return 0, false, true, invariant("ondemand-in", t.ID, err)
		}
		if s.tr != nil {
			s.memEvent("alloc", "ondemand", t.ID, t.Bytes(), s.now())
			s.decide(obs.Decision{
				Tensor: t.ID, Action: "ondemand-swapin", Bytes: t.Bytes(),
				Reason: "accessed while swapped out (no prefetch landed)",
			})
		}
		if s.met != nil {
			s.met.Add("swap/ondemand", 1)
		}
		end, terr := s.runTransfer(fault.H2D, s.h2d, "ondemand", t.ID, t.Bytes(), s.now())
		if terr != nil {
			return s.abandonSwapIn(t, terr)
		}
		if err := s.landSwapIn(t, "ondemand-in"); err != nil {
			return 0, false, true, err
		}
		if countStats {
			s.stats.OnDemandInCount++
			s.stats.OnDemandInBytes += t.Bytes()
		}
		return end, true, true, nil
	default:
		return 0, false, false, nil
	}
}

// abandonSwapIn degrades a permanently failed on-demand swap-in to
// recomputation: the device buffer and host copy are dropped and the
// tensor re-enters via lineage replay (handled=false). Tensors without a
// replayable producer surface the transfer failure instead.
func (s *Session) abandonSwapIn(t *tensor.Tensor, terr error) (sim.Time, bool, bool, error) {
	if err := s.freeDevice(t, tensor.Out, "abandon-swapin"); err != nil {
		return 0, false, true, err
	}
	if !s.fallbackSafe(t) {
		return 0, false, true, fmt.Errorf("on-demand swap-in of %s: %w", t.ID, terr)
	}
	if err := s.host.ReleaseIdx(int(t.Idx), t.ID); err != nil {
		return 0, false, true, invariant("abandon-swapin", t.ID, err)
	}
	if err := t.TransitionTo(tensor.Recompute); err != nil {
		return 0, false, true, invariant("abandon-swapin", t.ID, err)
	}
	s.stats.SwapFallbacks++
	if s.tr != nil {
		s.memEvent("free", "fallback", t.ID, t.Bytes(), s.now())
		s.decide(obs.Decision{
			Tensor: t.ID, Action: "fallback-recompute", Bytes: t.Bytes(),
			Reason: "on-demand swap-in exhausted its DMA retry budget; degrading to lineage replay",
		})
	}
	if s.met != nil {
		s.met.Add("fallback/recompute", 1)
	}
	return 0, false, false, nil
}

// recompute regenerates t by replaying its lineage. The collective
// recomputation rule (§5.3) is applied progressively as the replay
// proceeds: each regenerated intermediate is kept while memory allows and
// released otherwise, bounding the replay's own footprint.
func (s *Session) recompute(t *tensor.Tensor, env *Env) (sim.Time, error) {
	end, err := s.replay(t, env, 0)
	// Clear the regenerated-set scratch for the next replay; the list
	// bounds the sweep to tensors actually touched.
	for _, i := range s.regenList {
		s.regen[i] = false
	}
	s.regenList = s.regenList[:0]
	return end, err
}

// markRegen adds t to the regenerated set of the replay in progress.
func (s *Session) markRegen(t *tensor.Tensor) {
	if !s.regen[t.Idx] {
		s.regen[t.Idx] = true
		s.regenList = append(s.regenList, t.Idx)
	}
}

// replay recursively re-executes the producer of t. Replay accesses are
// not reported to the policy and do not advance access counts: guided
// execution keys its decisions on the access counts observed during
// measured execution (§4.2).
func (s *Session) replay(t *tensor.Tensor, env *Env, depth int) (sim.Time, error) {
	if depth > maxReplayDepth {
		return 0, fmt.Errorf("recompute of %s exceeds depth %d (lineage cycle?)", t.ID, maxReplayDepth)
	}
	if t.Persistent {
		return 0, fmt.Errorf("recompute requested for persistent tensor %s", t.ID)
	}
	node := s.g.Producer(t)
	if node == nil {
		return 0, fmt.Errorf("recompute of %s: no producer in lineage", t.ID)
	}
	if len(node.Outputs) != 1 {
		return 0, fmt.Errorf("recompute of %s: multi-output producer %s", t.ID, node.ID)
	}

	pinBase := s.pinBase()
	s.pinAll(node.Inputs)
	s.pinOne(t)
	defer s.unpinTo(pinBase)

	deps := s.now()
	for _, in := range node.Inputs {
		ready, _, handled, err := s.ensureOnDevice(in, env, true)
		if err != nil {
			return 0, err
		}
		if !handled {
			ready, err = s.replay(in, env, depth+1)
			if err != nil {
				return 0, err
			}
		}
		deps = sim.MaxTime(deps, ready)
	}

	a, err := s.allocate(t.Bytes(), env)
	if err != nil {
		return 0, err
	}
	t.Alloc = a
	if err := s.becomeResident(t, "replay"); err != nil {
		return 0, err
	}
	if s.tr != nil {
		s.memEvent("alloc", "recompute", t.ID, t.Bytes(), s.now())
	}

	// Per-depth fingerprint scratch: inner replays at depth+1 run before
	// this depth reads its buffer, so each depth owns its own.
	for len(s.replayBufs) <= depth {
		s.replayBufs = append(s.replayBufs, replayBuf{})
	}
	inFPs := s.replayBufs[depth].fps[:0]
	for _, in := range node.Inputs {
		if in.Fingerprint == 0 {
			return 0, invariant("replay", in.ID, fmt.Errorf("recompute of %s reads input with empty fingerprint", t.ID))
		}
		inFPs = append(inFPs, in.Fingerprint)
	}
	s.replayBufs[depth].fps = inFPs
	algo, wsAlloc, err := s.chooseAlgorithm(node)
	if err != nil {
		return 0, err
	}
	dur := s.spikeKernel(node.ID, algo.Duration)
	label := "recompute"
	if s.tr != nil || s.compute.Recording() {
		label = "recompute " + node.ID
	}
	rStart, end := s.compute.Run(label, deps, dur)
	if s.tr != nil {
		s.tr.Emit(obs.Event{
			Kind: obs.KindSpan, Cat: "recompute", Name: label,
			Lane: "compute", Start: rStart, End: end, Iter: s.iter,
			Node: node.ID, Tensor: t.ID,
		})
	}
	if s.met != nil {
		s.met.Observe("recompute", dur)
	}
	if wsAlloc != nil {
		if err := s.pool.Free(wsAlloc); err != nil {
			return 0, invariant("free-workspace", "", err)
		}
		if s.tr != nil {
			s.memEvent("free", "workspace", "", wsAlloc.Size, s.now())
		}
	}
	t.Fingerprint = tensor.ComputeFingerprint(node.ID, 0, inFPs)
	s.stats.RecomputeCount++
	s.stats.RecomputeTime += dur
	s.stats.RecomputeBytes += t.Bytes()
	s.markRegen(t)

	// Progressive collective-recomputation retention (§5.3): now that t
	// exists, each input regenerated along the way is kept only if it
	// will be used again and memory is plentiful; otherwise its memory is
	// released immediately so deep replays cost O(1) extra space.
	for _, in := range node.Inputs {
		if !s.regen[in.Idx] || in == t {
			continue
		}
		if in.Status != tensor.In || in.Alloc == nil {
			s.regen[in.Idx] = false // claimed by a passive eviction
			continue
		}
		keep := s.cfg.CollectiveRecompute && s.refs[in.Idx] > 0 &&
			s.pool.FreeBytes() >= s.cfg.RecomputeHeadroom+in.Alloc.Size
		if keep {
			continue
		}
		next := tensor.Freed
		if s.refs[in.Idx] > 0 {
			next = tensor.Recompute
		}
		if err := s.freeDevice(in, next, "replay-release"); err != nil {
			return 0, err
		}
		s.regen[in.Idx] = false
		if s.tr != nil {
			s.memEvent("free", "replay-release", in.ID, in.Bytes(), s.now())
		}
	}
	return end, nil
}

// allocate reserves device memory, in order of escalation: apply due
// in-flight frees, stall on the earliest outstanding swap-out (decoupled
// OOM synchronization, §5.3), then ask the policy for synchronous passive
// evictions (§5.2). Injected spurious allocation failures are absorbed by
// retrying after a virtual-time backoff; real failures that later succeed
// are counted as OOM recoveries. Fails with ErrIterationOOM when nothing
// helps.
func (s *Session) allocate(size int64, env *Env) (*memory.Allocation, error) {
	oomSeen := false
	spurious := 0
	evicts := 0
	for {
		if err := s.applyDueFrees(s.now()); err != nil {
			return nil, err
		}
		if spurious < maxSpuriousAllocRetries && s.inj.AllocFails("device") {
			// Transient cudaMalloc hiccup: back off in virtual time and
			// retry the same request.
			s.stats.AllocFaults++
			spurious++
			if s.tr != nil {
				s.laneInstant("fault", "alloc-fault", "compute", "spurious device allocation failure", s.now())
			}
			if s.met != nil {
				s.met.Add("faults/alloc", 1)
			}
			if delay := sim.Backoff(s.inj.Plan().Backoff(), spurious-1); delay > 0 {
				s.stallTo(s.now()+delay, "alloc-backoff")
			}
			continue
		}
		a := s.pool.TryAlloc(size)
		if a != nil {
			if oomSeen || spurious > 0 {
				s.stats.OOMRecoveries++
				s.stats.RecoveryEvicts += evicts
				if s.tr != nil {
					s.laneInstant("oom", "oom-recovered", "compute",
						fmt.Sprintf("%s allocated after %d evictions", obs.FmtBytes(size), evicts), s.now())
				}
				if s.met != nil {
					s.met.Add("oom/recoveries", 1)
				}
			}
			return a, nil
		}
		if !oomSeen && s.tr != nil {
			s.tr.Emit(obs.Event{
				Kind: obs.KindInstant, Cat: "oom", Name: "oom", Lane: "compute",
				Start: s.now(), End: s.now(), Iter: s.iter, Bytes: size,
				Used: s.pool.Used(), Free: s.pool.FreeBytes(),
				LargestFree: s.pool.LargestFree(), HostUsed: s.host.Used(),
				Detail: "allocation failed: " + obs.FmtBytes(size),
			})
		}
		oomSeen = true
		if p, ok := s.pendingFrees.PeekEarliest(); ok {
			s.stallTo(p.At, "oom-wait-swapout")
			if err := s.applyDueFrees(s.now()); err != nil {
				return nil, err
			}
			continue
		}
		if h, isHandler := s.policy.(OOMHandler); isHandler {
			// Eviction-hook path: the policy acts directly through the Env
			// (releases for recomputation, asynchronous swap-outs) instead
			// of returning a passive victim list.
			freeBefore := s.pool.FreeBytes()
			progress, hok := h.HandleOOM(size, env)
			if s.defErr != nil {
				derr := s.defErr
				s.defErr = nil
				return nil, derr
			}
			if !hok {
				return nil, fmt.Errorf("allocating %d bytes: %w: %w", size, memory.NewOOMError(s.pool, size), ErrIterationOOM)
			}
			if progress {
				// A handler that claims progress without freeing anything
				// now or queueing an asynchronous release would livelock
				// the loop; demote the claim.
				if _, pending := s.pendingFrees.PeekEarliest(); !pending && s.pool.FreeBytes() == freeBefore {
					progress = false
				}
			}
			if progress {
				evicts++
				continue
			}
			progressed, cerr := s.completeEarliestSwapIn()
			if cerr != nil {
				return nil, cerr
			}
			if progressed {
				continue
			}
			return nil, fmt.Errorf("allocating %d bytes with no evictable tensors: %w: %w", size, memory.NewOOMError(s.pool, size), ErrIterationOOM)
		}
		victims, ok := s.policy.OnOOM(size, env)
		if !ok {
			return nil, fmt.Errorf("allocating %d bytes: %w: %w", size, memory.NewOOMError(s.pool, size), ErrIterationOOM)
		}
		if s.tr != nil {
			s.decide(obs.Decision{
				Action: "oom-scan", Bytes: size, Candidates: len(victims),
				Reason: "synchronous passive-eviction victim scan (§5.2)",
			})
		}
		if s.defErr != nil {
			err := s.defErr
			s.defErr = nil
			return nil, err
		}
		evicted := false
		for _, v := range victims {
			if v.Status != tensor.In || v.Persistent || s.pinned[v.Idx] {
				continue
			}
			if everr := s.passiveEvict(v); everr != nil {
				if errors.Is(everr, ErrInvariant) {
					return nil, everr
				}
				// Host-side failure (arena pressure or an injected fault):
				// under injection, degrade the victim to recomputation so
				// passive mode still makes progress.
				if s.inj.Enabled() {
					ok, ferr := s.recomputeFallback(v)
					if ferr != nil {
						return nil, ferr
					}
					if ok {
						evicted = true
						evicts++
					}
					continue
				}
				return nil, fmt.Errorf("passive eviction of %s: %w: %w", v.ID, everr, ErrIterationOOM)
			}
			evicted = true
			evicts++
		}
		if !evicted {
			// Last resort: wait for an in-flight prefetch to land so its
			// buffer becomes evictable on the next round.
			progressed, cerr := s.completeEarliestSwapIn()
			if cerr != nil {
				return nil, cerr
			}
			if progressed {
				continue
			}
			return nil, fmt.Errorf("allocating %d bytes with no evictable tensors: %w: %w", size, memory.NewOOMError(s.pool, size), ErrIterationOOM)
		}
	}
}

// fallbackSafe reports whether t may be degraded from swapping to
// recomputation: it needs a replayable producer and every remaining use
// must precede the first in-place parameter update, so the replay cannot
// observe modified weights (recompute-after-update would produce
// different values than the preserved host copy).
func (s *Session) fallbackSafe(t *tensor.Tensor) bool {
	return !t.Persistent && s.g.Producer(t) != nil && int(s.lastUse[t.Idx]) < s.updateBarrier
}

// recomputeFallback abandons the swap path for a resident victim and
// releases its device memory for lineage recomputation instead — the
// swap→recompute degradation used when the host arena or the D2H link is
// unusable. Reports false when v has no replayable lineage.
func (s *Session) recomputeFallback(v *tensor.Tensor) (bool, error) {
	if v.Status != tensor.In || v.Alloc == nil || !s.fallbackSafe(v) {
		return false, nil
	}
	if err := s.freeDevice(v, tensor.Recompute, "recompute-fallback"); err != nil {
		return false, err
	}
	s.stats.SwapFallbacks++
	if s.tr != nil {
		s.memEvent("free", "fallback", v.ID, v.Bytes(), s.now())
		s.decide(obs.Decision{
			Tensor: v.ID, Action: "fallback-recompute", Bytes: v.Bytes(),
			Reason: "host arena or D2H link unusable; releasing victim for lineage replay",
		})
	}
	if s.met != nil {
		s.met.Add("fallback/recompute", 1)
	}
	return true, nil
}

// completeEarliestSwapIn stalls until the earliest in-flight swap-in
// finishes and marks its tensor resident (and therefore evictable).
// Returns false when no swap-in is in flight.
func (s *Session) completeEarliestSwapIn() (bool, error) {
	best := int32(-1)
	var bestAt sim.Time
	for _, i := range s.swapInList {
		at := s.swapInAt[i]
		// Tie-break on tensor ID, matching the historical map scan's
		// deterministic order.
		if best < 0 || at < bestAt || (at == bestAt && s.tlist[i].ID < s.tlist[best].ID) {
			best, bestAt = i, at
		}
	}
	if best < 0 {
		return false, nil
	}
	t := s.tlist[best]
	s.swapInClear(best)
	if t.Status != tensor.SwappingIn {
		return true, nil // state moved on; let the caller retry
	}
	s.stallTo(bestAt, "oom-wait-swapin")
	if err := s.landSwapIn(t, "complete-swapin"); err != nil {
		return true, err
	}
	return true, nil
}

// passiveEvict synchronously copies a tensor to host and frees its device
// memory, stalling the compute stream for the copy (§5.2). Injected D2H
// faults are retried with backoff; a permanent failure leaves the tensor
// resident with the host reservation rolled back.
func (s *Session) passiveEvict(v *tensor.Tensor) error {
	if s.inj.HostFails(v.ID) {
		s.stats.HostFaults++
		if s.tr != nil {
			s.laneInstant("fault", "host-fault", "compute", v.ID, s.now())
		}
		if s.met != nil {
			s.met.Add("faults/host", 1)
		}
		return fmt.Errorf("host reservation for %s: %w", v.ID, fault.ErrInjected)
	}
	if err := s.host.ReserveIdx(int(v.Idx), v.ID, v.Bytes()); err != nil {
		return err
	}
	end, terr := s.runTransfer(fault.D2H, s.d2h, "passive", v.ID, v.Bytes(), s.now())
	if terr != nil {
		if err := s.host.ReleaseIdx(int(v.Idx), v.ID); err != nil {
			return invariant("passive-evict", v.ID, err)
		}
		return terr
	}
	s.stallTo(end, "passive-evict")
	if err := s.freeDevice(v, tensor.SwappingOut, "passive-evict"); err != nil {
		return err
	}
	if err := v.TransitionTo(tensor.Out); err != nil {
		return invariant("passive-evict", v.ID, err)
	}
	s.stats.PassiveEvicts++
	s.stats.PassiveBytes += v.Bytes()
	if s.tr != nil {
		s.memEvent("free", "evict", v.ID, v.Bytes(), s.now())
		s.decide(obs.Decision{
			Tensor: v.ID, Action: "passive-evict", Bytes: v.Bytes(),
			Reason: "LRU victim copied to host synchronously under OOM",
		})
	}
	if s.met != nil {
		s.met.Add("evict/passive", 1)
	}
	if h := s.host.Peak(); h > s.stats.HostPeak {
		s.stats.HostPeak = h
	}
	return nil
}

// applyDueFrees releases device memory whose swap-out completed by now.
func (s *Session) applyDueFrees(now sim.Time) error {
	for _, p := range s.pendingFrees.PopDue(now) {
		if err := s.finishSwapOut(p.Key); err != nil {
			return err
		}
	}
	return nil
}

// drainSwapOuts waits for every outstanding swap-out (coupled mode).
func (s *Session) drainSwapOuts() error {
	for {
		p, ok := s.pendingFrees.PopEarliest()
		if !ok {
			return nil
		}
		s.stallTo(p.At, "coupled-drain")
		if err := s.finishSwapOut(p.Key); err != nil {
			return err
		}
	}
}

// finishSwapOut completes one swap-out: free device memory, mark Out.
func (s *Session) finishSwapOut(id string) error {
	t := s.g.Tensor(id)
	if t == nil || t.Status != tensor.SwappingOut {
		return nil
	}
	if err := s.freeDevice(t, tensor.Out, "finish-swapout"); err != nil {
		return err
	}
	if s.tr != nil {
		s.memEvent("free", "swapout-complete", id, t.Bytes(), s.now())
	}
	return nil
}

// endIteration waits for outstanding transfers, snapshots the parameter
// fingerprint and resets per-iteration tensor state.
func (s *Session) endIteration(env *Env) error {
	barrier := sim.MaxTime(s.now(), sim.MaxTime(s.d2h.AvailableAt(), s.h2d.AvailableAt()))
	s.compute.AdvanceTo(barrier)
	var firstErr error
	for {
		p, ok := s.pendingFrees.PopEarliest()
		if !ok {
			break
		}
		if err := s.finishSwapOut(p.Key); err != nil && firstErr == nil {
			firstErr = err
		}
	}

	// Parameter fingerprint over variables in declaration order.
	h := tensor.HashSeed("params")
	for _, n := range s.g.Nodes {
		for _, t := range n.Outputs {
			if t.Persistent {
				h = tensor.HashCombine(h, t.Fingerprint)
			}
		}
	}
	s.stats.ParamFingerprint = h

	for _, n := range s.g.Nodes {
		for _, t := range n.Outputs {
			if t.Persistent {
				continue
			}
			if t.Alloc != nil {
				if err := s.pool.Free(t.Alloc); err != nil && firstErr == nil {
					firstErr = invariant("end-iteration", t.ID, err)
				}
				t.Alloc = nil
				if s.tr != nil {
					s.memEvent("free", "end-iter", t.ID, t.Bytes(), s.now())
				}
			}
			if s.host.HoldsIdx(int(t.Idx)) {
				if err := s.host.ReleaseIdx(int(t.Idx), t.ID); err != nil && firstErr == nil {
					firstErr = invariant("end-iteration", t.ID, err)
				}
			}
			t.ResetIteration()
		}
	}
	s.resetLRU()
	s.clearSwapIns()
	s.unpinTo(0)
	if firstErr == nil && s.defErr != nil {
		firstErr = s.defErr
		s.defErr = nil
	}
	return firstErr
}
