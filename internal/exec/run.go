package exec

import (
	"container/list"
	"errors"
	"fmt"

	"capuchin/internal/graph"
	"capuchin/internal/memory"
	"capuchin/internal/ops"
	"capuchin/internal/sim"
	"capuchin/internal/tensor"
)

// ErrIterationOOM wraps allocation failures that no policy action could
// resolve; the max-batch searches treat it as "this batch does not fit".
var ErrIterationOOM = errors.New("iteration failed with out-of-memory")

// maxReplayDepth bounds recomputation recursion; real lineages are bounded
// by forward-graph depth.
const maxReplayDepth = 10000

// RunIteration executes one training iteration and returns its statistics.
// On out-of-memory failure the returned error matches ErrIterationOOM.
func (s *Session) RunIteration() (IterStats, error) {
	env := &Env{s: s}
	s.stats = IterStats{Iter: s.iter}
	s.startTime = s.now()
	s.penalty = 0

	// Per-iteration reference counts: one per scheduled use.
	s.refs = make(map[string]int, len(s.g.Tensors()))
	for _, n := range s.g.Nodes {
		for _, in := range n.Inputs {
			if !in.Persistent {
				s.refs[in.ID]++
			}
		}
	}
	// Eager tape retention: imperative execution holds every forward
	// activation until backward completes (§2.2, §6.4.1).
	s.retained = make(map[string]bool)
	if s.cfg.Mode == EagerMode {
		for _, n := range s.g.Nodes {
			if n.Phase != graph.Forward {
				continue
			}
			for _, out := range n.Outputs {
				if !out.Persistent {
					s.retained[out.ID] = true
				}
			}
		}
	}

	s.policy.BeginIteration(s.iter, env)
	var runErr error
	for _, n := range s.g.Nodes {
		if err := s.executeNode(n, env); err != nil {
			runErr = fmt.Errorf("node %s: %w", n.ID, err)
			break
		}
	}
	s.endIteration(env)
	s.policy.EndIteration(s.iter, env)

	st := s.stats
	st.Duration = s.now() - s.startTime
	st.PeakBytes = s.pool.Peak()
	s.iter++
	return st, runErr
}

// Run executes n iterations, returning per-iteration stats. It stops at
// the first failure.
func (s *Session) Run(n int) ([]IterStats, error) {
	stats := make([]IterStats, 0, n)
	for i := 0; i < n; i++ {
		st, err := s.RunIteration()
		stats = append(stats, st)
		if err != nil {
			return stats, err
		}
	}
	return stats, nil
}

// pin marks tensors as untouchable by passive eviction, returning the IDs
// newly pinned so the caller can unpin exactly those.
func (s *Session) pin(ts ...*tensor.Tensor) []string {
	var added []string
	for _, t := range ts {
		if !s.pinned[t.ID] {
			s.pinned[t.ID] = true
			added = append(added, t.ID)
		}
	}
	return added
}

func (s *Session) unpin(ids []string) {
	for _, id := range ids {
		delete(s.pinned, id)
	}
}

// executeNode runs one scheduled node: residency, allocation, algorithm
// choice, kernel execution, access reporting and deallocation.
func (s *Session) executeNode(n *graph.Node, env *Env) error {
	if _, isVar := n.Op.(ops.Variable); isVar {
		return nil // parameters are pre-resident; declaration costs nothing
	}
	s.stats.Nodes++

	pinnedIDs := s.pin(n.Inputs...)
	pinnedIDs = append(pinnedIDs, s.pin(n.Outputs...)...)
	defer s.unpin(pinnedIDs)

	// vDNN-style coupled execution: wait for all outstanding swap-outs
	// before issuing the next layer (§3.1, Fig. 1).
	if s.cfg.CoupledSwap {
		s.drainSwapOuts()
	}

	issueAt := s.now()
	deps := issueAt
	// Eager mode: the CPU dispatch stream serializes ahead of the kernel.
	if s.cpu != nil {
		_, cpuEnd := s.cpu.Run("dispatch "+n.ID, 0, s.dev.EagerDispatch)
		deps = sim.MaxTime(deps, cpuEnd)
	}
	dispatchReady := deps

	// Materialize inputs, collecting per-input stall information for the
	// policy's feedback loop.
	stalls := make([]sim.Time, len(n.Inputs))
	inflight := make([]bool, len(n.Inputs))
	for i, in := range n.Inputs {
		ready, wasInFlight, err := s.materialize(in, env)
		if err != nil {
			return err
		}
		if ready > issueAt {
			stalls[i] = ready - issueAt
		}
		inflight[i] = wasInFlight
		deps = sim.MaxTime(deps, ready)
	}

	// Allocate outputs.
	for _, out := range n.Outputs {
		if out.Persistent {
			continue
		}
		a, err := s.allocate(out.Bytes(), env)
		if err != nil {
			return err
		}
		out.Alloc = a
		if err := out.TransitionTo(tensor.In); err != nil {
			return err
		}
		s.touchLRU(out)
	}

	// Algorithm choice: fastest whose workspace fits right now, mirroring
	// cuDNN's workspace-limited algorithm selection (§2.1). Memory
	// pressure silently degrades convolutions to slower algorithms — the
	// VGG16 effect of §6.3.2.
	inShapes := make([]tensor.Shape, len(n.Inputs))
	for i, in := range n.Inputs {
		inShapes[i] = in.Shape
	}
	algo, wsAlloc := s.chooseAlgorithm(n.Op, inShapes)

	dur := algo.Duration
	if s.trackCost > 0 {
		dur += sim.Time(len(n.Inputs)+len(n.Outputs)) * s.trackCost
	}
	// Stalls inserted during materialization/allocation already advanced
	// the compute stream (and were charged to penalty there); only the
	// remaining wait on transfer dependencies is exposed here.
	preRun := sim.MaxTime(s.now(), dispatchReady)
	start, end := s.compute.Run(n.ID, deps, dur)
	if exposed := start - preRun; exposed > 0 {
		s.stats.StallTime += exposed
		s.penalty += exposed
	}
	if wsAlloc != nil {
		s.pool.Free(wsAlloc)
	}

	// Produce fingerprints: the correctness oracle.
	inFPs := make([]uint64, len(n.Inputs))
	for i, in := range n.Inputs {
		if in.Fingerprint == 0 {
			return fmt.Errorf("input %s consumed with empty fingerprint (residency bug)", in.ID)
		}
		inFPs[i] = in.Fingerprint
	}
	for i, out := range n.Outputs {
		out.Fingerprint = tensor.ComputeFingerprint(n.ID, i, inFPs)
	}
	if _, isUpdate := n.Op.(ops.ApplyGradient); isUpdate {
		// In-place variable update: fold the gradient into the weight's
		// fingerprint chain.
		v := n.Inputs[0]
		v.Fingerprint = tensor.ComputeFingerprint(n.ID, -1, []uint64{v.Fingerprint, n.Inputs[1].Fingerprint})
	}
	if len(n.Outputs) > 0 && n.Outputs[0] == s.g.Loss {
		s.stats.LossFingerprint = n.Outputs[0].Fingerprint
	}

	// Report accesses: reads at op start, produces at op end. Policy
	// actions triggered by these accesses anchor at op end — the delayed
	// asynchronous operation of §5.4.
	s.actionAnchor = end
	for i, in := range n.Inputs {
		s.reportAccess(in, Read, start, stalls[i], inflight[i], n.ID, env)
	}
	for _, out := range n.Outputs {
		s.reportAccess(out, Produce, end, 0, false, n.ID, env)
	}

	// Reference counting: release dead tensors at op end.
	for _, in := range n.Inputs {
		if in.Persistent {
			continue
		}
		s.refs[in.ID]--
		if s.refs[in.ID] == 0 && !s.retained[in.ID] {
			s.release(in, end, env)
		}
	}
	for _, out := range n.Outputs {
		if !out.Persistent && s.refs[out.ID] == 0 && !s.retained[out.ID] {
			s.release(out, end, env)
		}
	}
	return nil
}

// chooseAlgorithm picks the fastest algorithm whose workspace can be
// allocated, falling back to the terminal zero-workspace variant.
func (s *Session) chooseAlgorithm(op ops.Op, inShapes []tensor.Shape) (ops.Algorithm, *memory.Allocation) {
	algos := op.Algorithms(s.dev, inShapes)
	for _, a := range algos {
		if a.Workspace == 0 {
			return a, nil
		}
		s.applyDueFrees(s.now())
		ws, err := s.pool.Alloc(a.Workspace)
		if err == nil {
			return a, ws
		}
	}
	return algos[len(algos)-1], nil
}

// reportAccess updates access bookkeeping and notifies the policy.
func (s *Session) reportAccess(t *tensor.Tensor, kind AccessKind, at sim.Time, stall sim.Time, inflight bool, nodeID string, env *Env) {
	s.stats.Accesses++
	count := t.Touch(at - s.penalty)
	s.touchLRU(t)
	s.policy.OnAccess(Access{
		Tensor:   t,
		Kind:     kind,
		Count:    count,
		At:       at - s.penalty,
		Raw:      at,
		Stall:    stall,
		InFlight: inflight,
		NodeID:   nodeID,
		Iter:     s.iter,
	}, env)
}

// release frees a dead tensor and reports the deallocation to the policy.
func (s *Session) release(t *tensor.Tensor, at sim.Time, env *Env) {
	switch t.Status {
	case tensor.In:
		s.pool.Free(t.Alloc)
		t.Alloc = nil
		s.dropLRU(t)
		if err := t.TransitionTo(tensor.Freed); err != nil {
			panic(err)
		}
	case tensor.Out:
		if s.host.Holds(t.ID) {
			if err := s.host.Release(t.ID); err != nil {
				panic(err)
			}
		}
		s.dropLRU(t)
		if err := t.TransitionTo(tensor.Freed); err != nil {
			panic(err)
		}
	case tensor.Recompute:
		s.dropLRU(t)
		if err := t.TransitionTo(tensor.Freed); err != nil {
			panic(err)
		}
	default:
		// SwappingOut/SwappingIn: an in-flight transfer owns the buffer;
		// the pending completion or the iteration barrier cleans up.
		return
	}
	s.stats.Accesses++
	s.policy.OnAccess(Access{
		Tensor: t,
		Kind:   Dealloc,
		Count:  t.AccessCount,
		At:     at - s.penalty,
		Raw:    at,
		NodeID: "",
		Iter:   s.iter,
	}, env)
}

// materialize ensures a scheduled input is readable on device, returning
// when it becomes ready and whether it was mid-swap-in.
func (s *Session) materialize(t *tensor.Tensor, env *Env) (sim.Time, bool, error) {
	ready, inflight, handled, err := s.ensureOnDevice(t, env, true)
	if err != nil || handled {
		return ready, inflight, err
	}
	// Recompute path (status Recompute, or Freed via lineage).
	ready, err = s.recompute(t, env)
	return ready, false, err
}

// ensureOnDevice handles the residency states that do not require
// recomputation. handled=false means the tensor needs lineage replay.
func (s *Session) ensureOnDevice(t *tensor.Tensor, env *Env, countStats bool) (ready sim.Time, inflight bool, handled bool, err error) {
	now := s.now()
	switch t.Status {
	case tensor.In, tensor.SwappingOut:
		// Readable on device; a tensor mid-swap-out stays readable and
		// its host copy covers the later re-access (§5.3).
		return now, false, true, nil
	case tensor.SwappingIn:
		done := s.swapInDone[t.ID]
		delete(s.swapInDone, t.ID)
		if err := t.TransitionTo(tensor.In); err != nil {
			return 0, false, true, err
		}
		if s.host.Holds(t.ID) {
			if err := s.host.Release(t.ID); err != nil {
				return 0, false, true, err
			}
		}
		s.touchLRU(t)
		return sim.MaxTime(done, now), done > now, true, nil
	case tensor.Out:
		// Access failure: on-demand swap-in (§5.2 passive mode).
		a, aerr := s.allocate(t.Bytes(), env)
		if aerr != nil {
			return 0, false, true, aerr
		}
		t.Alloc = a
		if err := t.TransitionTo(tensor.SwappingIn); err != nil {
			return 0, false, true, err
		}
		_, end := s.h2d.Run("ondemand "+t.ID, s.now(), s.dev.H2D.TransferTime(t.Bytes()))
		if err := t.TransitionTo(tensor.In); err != nil {
			return 0, false, true, err
		}
		if err := s.host.Release(t.ID); err != nil {
			return 0, false, true, err
		}
		if countStats {
			s.stats.OnDemandInCount++
			s.stats.OnDemandInBytes += t.Bytes()
		}
		s.touchLRU(t)
		return end, true, true, nil
	default:
		return 0, false, false, nil
	}
}

// recompute regenerates t by replaying its lineage. The collective
// recomputation rule (§5.3) is applied progressively as the replay
// proceeds: each regenerated intermediate is kept while memory allows and
// released otherwise, bounding the replay's own footprint.
func (s *Session) recompute(t *tensor.Tensor, env *Env) (sim.Time, error) {
	regenerated := make(map[*tensor.Tensor]bool)
	return s.replay(t, env, regenerated, 0)
}

// replay recursively re-executes the producer of t. Replay accesses are
// not reported to the policy and do not advance access counts: guided
// execution keys its decisions on the access counts observed during
// measured execution (§4.2).
func (s *Session) replay(t *tensor.Tensor, env *Env, regenerated map[*tensor.Tensor]bool, depth int) (sim.Time, error) {
	if depth > maxReplayDepth {
		return 0, fmt.Errorf("recompute of %s exceeds depth %d (lineage cycle?)", t.ID, maxReplayDepth)
	}
	if t.Persistent {
		return 0, fmt.Errorf("recompute requested for persistent tensor %s", t.ID)
	}
	node := s.g.Producer(t)
	if node == nil {
		return 0, fmt.Errorf("recompute of %s: no producer in lineage", t.ID)
	}
	if len(node.Outputs) != 1 {
		return 0, fmt.Errorf("recompute of %s: multi-output producer %s", t.ID, node.ID)
	}

	pinnedIDs := s.pin(node.Inputs...)
	pinnedIDs = append(pinnedIDs, s.pin(t)...)
	defer s.unpin(pinnedIDs)

	deps := s.now()
	for _, in := range node.Inputs {
		ready, _, handled, err := s.ensureOnDevice(in, env, true)
		if err != nil {
			return 0, err
		}
		if !handled {
			ready, err = s.replay(in, env, regenerated, depth+1)
			if err != nil {
				return 0, err
			}
		}
		deps = sim.MaxTime(deps, ready)
	}

	a, err := s.allocate(t.Bytes(), env)
	if err != nil {
		return 0, err
	}
	t.Alloc = a
	if err := t.TransitionTo(tensor.In); err != nil {
		return 0, err
	}
	s.touchLRU(t)

	inShapes := make([]tensor.Shape, len(node.Inputs))
	inFPs := make([]uint64, len(node.Inputs))
	for i, in := range node.Inputs {
		inShapes[i] = in.Shape
		if in.Fingerprint == 0 {
			return 0, fmt.Errorf("recompute of %s reads %s with empty fingerprint", t.ID, in.ID)
		}
		inFPs[i] = in.Fingerprint
	}
	algo, wsAlloc := s.chooseAlgorithm(node.Op, inShapes)
	_, end := s.compute.Run("recompute "+node.ID, deps, algo.Duration)
	if wsAlloc != nil {
		s.pool.Free(wsAlloc)
	}
	t.Fingerprint = tensor.ComputeFingerprint(node.ID, 0, inFPs)
	s.stats.RecomputeCount++
	s.stats.RecomputeTime += algo.Duration
	regenerated[t] = true

	// Progressive collective-recomputation retention (§5.3): now that t
	// exists, each input regenerated along the way is kept only if it
	// will be used again and memory is plentiful; otherwise its memory is
	// released immediately so deep replays cost O(1) extra space.
	for _, in := range node.Inputs {
		if !regenerated[in] || in == t {
			continue
		}
		if in.Status != tensor.In || in.Alloc == nil {
			delete(regenerated, in) // claimed by a passive eviction
			continue
		}
		keep := s.cfg.CollectiveRecompute && s.refs[in.ID] > 0 &&
			s.pool.FreeBytes() >= s.cfg.RecomputeHeadroom+in.Alloc.Size
		if keep {
			continue
		}
		s.pool.Free(in.Alloc)
		in.Alloc = nil
		s.dropLRU(in)
		next := tensor.Freed
		if s.refs[in.ID] > 0 {
			next = tensor.Recompute
		}
		if err := in.TransitionTo(next); err != nil {
			return 0, err
		}
		delete(regenerated, in)
	}
	return end, nil
}

// allocate reserves device memory, in order of escalation: apply due
// in-flight frees, stall on the earliest outstanding swap-out (decoupled
// OOM synchronization, §5.3), then ask the policy for synchronous passive
// evictions (§5.2). Fails with ErrIterationOOM when nothing helps.
func (s *Session) allocate(size int64, env *Env) (*memory.Allocation, error) {
	for {
		s.applyDueFrees(s.now())
		a, err := s.pool.Alloc(size)
		if err == nil {
			return a, nil
		}
		if p, ok := s.pendingFrees.PeekEarliest(); ok {
			if p.At > s.now() {
				stall := p.At - s.now()
				s.stats.StallTime += stall
				s.penalty += stall
				s.compute.AdvanceTo(p.At)
			}
			s.applyDueFrees(s.now())
			continue
		}
		victims, ok := s.policy.OnOOM(size, env)
		if !ok {
			return nil, fmt.Errorf("allocating %d bytes: %v: %w", size, err, ErrIterationOOM)
		}
		evicted := false
		for _, v := range victims {
			if v.Status != tensor.In || v.Persistent || s.pinned[v.ID] {
				continue
			}
			if err := s.passiveEvict(v); err != nil {
				return nil, fmt.Errorf("passive eviction of %s: %v: %w", v.ID, err, ErrIterationOOM)
			}
			evicted = true
		}
		if !evicted {
			// Last resort: wait for an in-flight prefetch to land so its
			// buffer becomes evictable on the next round.
			if s.completeEarliestSwapIn() {
				continue
			}
			return nil, fmt.Errorf("allocating %d bytes with no evictable tensors: %v: %w", size, err, ErrIterationOOM)
		}
	}
}

// completeEarliestSwapIn stalls until the earliest in-flight swap-in
// finishes and marks its tensor resident (and therefore evictable).
// Returns false when no swap-in is in flight.
func (s *Session) completeEarliestSwapIn() bool {
	var bestID string
	var bestAt sim.Time
	for id, at := range s.swapInDone {
		if bestID == "" || at < bestAt || (at == bestAt && id < bestID) {
			bestID, bestAt = id, at
		}
	}
	if bestID == "" {
		return false
	}
	t := s.g.Tensor(bestID)
	delete(s.swapInDone, bestID)
	if t == nil || t.Status != tensor.SwappingIn {
		return true // state moved on; let the caller retry
	}
	if bestAt > s.now() {
		stall := bestAt - s.now()
		s.stats.StallTime += stall
		s.penalty += stall
		s.compute.AdvanceTo(bestAt)
	}
	if err := t.TransitionTo(tensor.In); err != nil {
		panic(err)
	}
	if s.host.Holds(bestID) {
		if err := s.host.Release(bestID); err != nil {
			panic(err)
		}
	}
	s.touchLRU(t)
	return true
}

// passiveEvict synchronously copies a tensor to host and frees its device
// memory, stalling the compute stream for the copy (§5.2).
func (s *Session) passiveEvict(v *tensor.Tensor) error {
	if err := s.host.Reserve(v.ID, v.Bytes()); err != nil {
		return err
	}
	_, end := s.d2h.Run("passive "+v.ID, s.now(), s.dev.D2H.TransferTime(v.Bytes()))
	if end > s.now() {
		stall := end - s.now()
		s.stats.StallTime += stall
		s.penalty += stall
		s.compute.AdvanceTo(end)
	}
	s.pool.Free(v.Alloc)
	v.Alloc = nil
	s.dropLRU(v)
	if err := v.TransitionTo(tensor.SwappingOut); err != nil {
		return err
	}
	if err := v.TransitionTo(tensor.Out); err != nil {
		return err
	}
	s.stats.PassiveEvicts++
	s.stats.PassiveBytes += v.Bytes()
	if h := s.host.Peak(); h > s.stats.HostPeak {
		s.stats.HostPeak = h
	}
	return nil
}

// applyDueFrees releases device memory whose swap-out completed by now.
func (s *Session) applyDueFrees(now sim.Time) {
	for _, p := range s.pendingFrees.PopDue(now) {
		s.finishSwapOut(p.Key)
	}
}

// drainSwapOuts waits for every outstanding swap-out (coupled mode).
func (s *Session) drainSwapOuts() {
	for {
		p, ok := s.pendingFrees.PopEarliest()
		if !ok {
			return
		}
		if p.At > s.now() {
			stall := p.At - s.now()
			s.stats.StallTime += stall
			s.penalty += stall
			s.compute.AdvanceTo(p.At)
		}
		s.finishSwapOut(p.Key)
	}
}

// finishSwapOut completes one swap-out: free device memory, mark Out.
func (s *Session) finishSwapOut(id string) {
	t := s.g.Tensor(id)
	if t == nil || t.Status != tensor.SwappingOut {
		return
	}
	s.pool.Free(t.Alloc)
	t.Alloc = nil
	s.dropLRU(t)
	if err := t.TransitionTo(tensor.Out); err != nil {
		panic(err)
	}
}

// endIteration waits for outstanding transfers, snapshots the parameter
// fingerprint and resets per-iteration tensor state.
func (s *Session) endIteration(env *Env) {
	barrier := sim.MaxTime(s.now(), sim.MaxTime(s.d2h.AvailableAt(), s.h2d.AvailableAt()))
	s.compute.AdvanceTo(barrier)
	for {
		p, ok := s.pendingFrees.PopEarliest()
		if !ok {
			break
		}
		s.finishSwapOut(p.Key)
	}

	// Parameter fingerprint over variables in declaration order.
	h := tensor.HashSeed("params")
	for _, n := range s.g.Nodes {
		for _, t := range n.Outputs {
			if t.Persistent {
				h = tensor.HashCombine(h, t.Fingerprint)
			}
		}
	}
	s.stats.ParamFingerprint = h

	for _, n := range s.g.Nodes {
		for _, t := range n.Outputs {
			if t.Persistent {
				continue
			}
			if t.Alloc != nil {
				s.pool.Free(t.Alloc)
				t.Alloc = nil
			}
			if s.host.Holds(t.ID) {
				if err := s.host.Release(t.ID); err != nil {
					panic(err)
				}
			}
			t.ResetIteration()
		}
	}
	s.lru.Init()
	s.lruPos = make(map[string]*list.Element)
	s.swapInDone = make(map[string]sim.Time)
	s.pinned = make(map[string]bool)
}
