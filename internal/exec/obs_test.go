package exec

import (
	"testing"

	"capuchin/internal/fault"
	"capuchin/internal/graph"
	"capuchin/internal/hw"
	"capuchin/internal/obs"
)

// runTraced executes n iterations of the test CNN with a Collector and
// metrics registry attached.
func runTraced(t *testing.T, mem int64, plan fault.Plan, n int) ([]IterStats, *obs.Collector, *obs.Metrics, error) {
	t.Helper()
	g := testCNN(t, graph.GraphModeOptions())
	col := obs.NewCollector()
	met := obs.NewMetrics()
	s, err := NewSession(g, Config{Device: device(mem), Policy: lruPolicy{}, Faults: plan, Tracer: col, Metrics: met})
	if err != nil {
		t.Fatal(err)
	}
	sts, runErr := s.Run(n)
	return sts, col, met, runErr
}

// TestTracingNeutrality is the zero-overhead-when-nil contract's other
// half: attaching a tracer must not change any virtual-time outcome. The
// traced run's IterStats must equal the untraced run's, fault-free and
// under heavy injection.
func TestTracingNeutrality(t *testing.T) {
	plans := []fault.Plan{
		{},
		{Seed: 1, TransferFailRate: 1, MaxTransferRetries: 2},
		{Seed: 5, AllocFailRate: 0.7},
	}
	for _, plan := range plans {
		base, baseErr := runFaulted(t, 128*hw.MiB, plan, 2)
		traced, _, _, tracedErr := runTraced(t, 128*hw.MiB, plan, 2)
		if (baseErr == nil) != (tracedErr == nil) {
			t.Fatalf("plan %+v: errors diverged: %v vs %v", plan, baseErr, tracedErr)
		}
		if len(base) != len(traced) {
			t.Fatalf("plan %+v: iteration counts diverged", plan)
		}
		for i := range base {
			if base[i] != traced[i] {
				t.Errorf("plan %+v iter %d: tracing changed the outcome:\n untraced %+v\n traced   %+v",
					plan, i, base[i], traced[i])
			}
		}
	}
}

// TestTraceEventCoverage checks that a traced run under memory pressure
// records the timeline the exporters need: kernel spans matching executed
// nodes, transfer spans for the swap traffic, memory events for every
// allocation, and populated metrics.
func TestTraceEventCoverage(t *testing.T) {
	sts, col, met, err := runTraced(t, 128*hw.MiB, fault.Plan{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	var nodes int
	for _, st := range sts {
		nodes += st.Nodes
	}
	var kernels, transfers, allocs, frees, stalls int
	for _, ev := range col.Events() {
		switch ev.Cat {
		case "kernel":
			kernels++
			if ev.Lane != "compute" || ev.End < ev.Start {
				t.Fatalf("malformed kernel span: %+v", ev)
			}
		case "transfer":
			transfers++
			if ev.Queued > ev.Start {
				t.Fatalf("transfer starts before it was queued: %+v", ev)
			}
		case "alloc":
			allocs++
			if ev.Used <= 0 {
				t.Fatalf("alloc event without allocator sample: %+v", ev)
			}
		case "free":
			frees++
		case "stall":
			stalls++
		}
	}
	if kernels != nodes {
		t.Errorf("kernel spans %d != executed nodes %d", kernels, nodes)
	}
	if transfers == 0 || allocs == 0 || frees == 0 {
		t.Errorf("missing coverage: transfers=%d allocs=%d frees=%d", transfers, allocs, frees)
	}
	if h, ok := met.Hist("kernel"); !ok || h.Count != int64(nodes) {
		t.Errorf("kernel histogram count %d, want %d", h.Count, nodes)
	}
	if stalls > 0 {
		if _, ok := met.Hist("stall/passive-evict"); !ok {
			if _, ok2 := met.Hist("stall/input-wait"); !ok2 {
				t.Error("stall spans recorded but no stall histogram observed")
			}
		}
	}

	// The event stream must reconstruct into a profile whose peak matches
	// the allocator's own high-water mark.
	prof := obs.BuildMemProfile(col.Events())
	peak := sts[0].PeakBytes
	if sts[1].PeakBytes > peak {
		peak = sts[1].PeakBytes
	}
	if prof.PeakBytes != peak {
		t.Errorf("profile peak %d != allocator peak %d", prof.PeakBytes, peak)
	}
	if len(prof.PeakResidents) == 0 {
		t.Error("peak attribution is empty under memory pressure")
	}
}

// TestSwapFallbackAudit links PR 2's graceful-degradation counters to the
// audit log: under a seeded fault plan, every SwapFallbacks increment must
// have a matching "fallback-recompute" decision explaining it.
func TestSwapFallbackAudit(t *testing.T) {
	plans := []fault.Plan{
		{Seed: 1, TransferFailRate: 1, MaxTransferRetries: 2},
		{Seed: 3, HostFailRate: 1},
	}
	for _, plan := range plans {
		sts, col, _, err := runTraced(t, 128*hw.MiB, plan, 2)
		if err != nil {
			t.Fatalf("plan %+v: %v", plan, err)
		}
		var fallbacks int
		for _, st := range sts {
			fallbacks += st.SwapFallbacks
		}
		if fallbacks == 0 {
			t.Fatalf("plan %+v: expected swap fallbacks under injection", plan)
		}
		var audited int
		for _, d := range col.Decisions() {
			if d.Action == "fallback-recompute" {
				audited++
				if d.Tensor == "" || d.Reason == "" {
					t.Errorf("fallback decision missing subject or reason: %+v", d)
				}
			}
		}
		if audited != fallbacks {
			t.Errorf("plan %+v: %d SwapFallbacks but %d fallback-recompute audit records",
				plan, fallbacks, audited)
		}
	}
}
