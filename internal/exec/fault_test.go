package exec

import (
	"errors"
	"testing"

	"capuchin/internal/fault"
	"capuchin/internal/graph"
	"capuchin/internal/hw"
	"capuchin/internal/memory"
)

// runFaulted executes n iterations of the test CNN under a fault plan and
// returns the stats and terminal error.
func runFaulted(t *testing.T, mem int64, plan fault.Plan, n int) ([]IterStats, error) {
	t.Helper()
	g := testCNN(t, graph.GraphModeOptions())
	s, err := NewSession(g, Config{Device: device(mem), Policy: lruPolicy{}, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	// Every faulted run doubles as a residency-invariant check: whatever
	// the injected failures did to the swap/recompute paths, the eviction
	// order must still mirror the allocator at each iteration boundary.
	var stats []IterStats
	for i := 0; i < n; i++ {
		st, err := s.RunIteration()
		stats = append(stats, st)
		if ierr := s.CheckResidencyInvariant(); ierr != nil {
			t.Fatalf("iter %d: %v", i, ierr)
		}
		if err != nil {
			return stats, err
		}
	}
	return stats, nil
}

func TestSeedOnlyPlanChangesNothing(t *testing.T) {
	// A plan with a seed but zero rates is disabled: every stat must be
	// identical to a run with no plan at all.
	base, err := runFaulted(t, 128*hw.MiB, fault.Plan{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	seeded, err := runFaulted(t, 128*hw.MiB, fault.Plan{Seed: 99}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range base {
		if base[i] != seeded[i] {
			t.Errorf("iter %d: seed-only plan changed stats:\n base %+v\n with %+v", i, base[i], seeded[i])
		}
	}
}

func TestFaultDeterminism(t *testing.T) {
	plan := fault.DefaultPlan(7)
	plan.TransferFailRate = 0.5
	a, errA := runFaulted(t, 128*hw.MiB, plan, 3)
	b, errB := runFaulted(t, 128*hw.MiB, plan, 3)
	if (errA == nil) != (errB == nil) {
		t.Fatalf("same seed diverged: %v vs %v", errA, errB)
	}
	if len(a) != len(b) {
		t.Fatalf("same seed ran %d vs %d iterations", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("iter %d differs under identical seeds:\n %+v\n %+v", i, a[i], b[i])
		}
	}

	other := plan
	other.Seed = 8
	c, _ := runFaulted(t, 128*hw.MiB, other, 3)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical fault schedules")
	}
}

func TestTransferFaultFallsBackToRecompute(t *testing.T) {
	// Every DMA aborts: passive eviction can never reach host memory, so
	// the executor must degrade victims to recomputation and still finish
	// with oracle-correct fingerprints.
	want := oracle(t, graph.GraphModeOptions())
	plan := fault.Plan{Seed: 1, TransferFailRate: 1, MaxTransferRetries: 2}
	sts, err := runFaulted(t, 128*hw.MiB, plan, 2)
	if err != nil {
		t.Fatalf("run under total transfer failure did not recover: %v", err)
	}
	var faults, retries, fallbacks, recomputes int
	for i, st := range sts {
		faults += st.TransferFaults
		retries += st.TransferRetries
		fallbacks += st.SwapFallbacks
		recomputes += st.RecomputeCount
		if st.LossFingerprint != want[i].LossFingerprint || st.ParamFingerprint != want[i].ParamFingerprint {
			t.Errorf("iter %d: fingerprints diverged from oracle under faults", i)
		}
	}
	if faults == 0 {
		t.Error("expected injected transfer faults at rate 1")
	}
	if retries == 0 {
		t.Error("expected transfer retries before giving up")
	}
	if fallbacks == 0 {
		t.Error("expected swap→recompute fallbacks when the link is dead")
	}
	if recomputes == 0 {
		t.Error("fallback tensors were never recomputed")
	}
}

func TestHostFaultFallsBackToRecompute(t *testing.T) {
	want := oracle(t, graph.GraphModeOptions())
	plan := fault.Plan{Seed: 3, HostFailRate: 1}
	sts, err := runFaulted(t, 128*hw.MiB, plan, 2)
	if err != nil {
		t.Fatalf("run under total host-reservation failure did not recover: %v", err)
	}
	var hostFaults, fallbacks int
	for i, st := range sts {
		hostFaults += st.HostFaults
		fallbacks += st.SwapFallbacks
		if st.LossFingerprint != want[i].LossFingerprint || st.ParamFingerprint != want[i].ParamFingerprint {
			t.Errorf("iter %d: fingerprints diverged from oracle under host faults", i)
		}
	}
	if hostFaults == 0 {
		t.Error("expected injected host faults at rate 1")
	}
	if fallbacks == 0 {
		t.Error("expected swap→recompute fallbacks when the host arena is unusable")
	}
}

func TestAllocFaultRecovery(t *testing.T) {
	// Spurious allocation failures at a high rate: the OOM recovery loop
	// must absorb them via backoff+retry and converge to the oracle.
	want := oracle(t, graph.GraphModeOptions())
	plan := fault.Plan{Seed: 5, AllocFailRate: 0.7}
	sts, err := runFaulted(t, 128*hw.MiB, plan, 2)
	if err != nil {
		t.Fatalf("run under spurious allocation failures did not recover: %v", err)
	}
	var allocFaults, recoveries int
	for i, st := range sts {
		allocFaults += st.AllocFaults
		recoveries += st.OOMRecoveries
		if st.LossFingerprint != want[i].LossFingerprint || st.ParamFingerprint != want[i].ParamFingerprint {
			t.Errorf("iter %d: fingerprints diverged from oracle under alloc faults", i)
		}
	}
	if allocFaults == 0 {
		t.Error("expected injected allocation faults at rate 0.7")
	}
	if recoveries == 0 {
		t.Error("expected OOM recoveries counting the absorbed failures")
	}
}

func TestKernelSpikesSlowIteration(t *testing.T) {
	base, err := runFaulted(t, 128*hw.MiB, fault.Plan{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	plan := fault.Plan{Seed: 11, KernelSpikeRate: 1, KernelSpikeFactor: 3}
	spiked, err := runFaulted(t, 128*hw.MiB, plan, 1)
	if err != nil {
		t.Fatal(err)
	}
	st := spiked[0]
	if st.KernelSpikes == 0 || st.SpikeTime <= 0 {
		t.Fatalf("expected kernel spikes at rate 1, got %d/%v", st.KernelSpikes, st.SpikeTime)
	}
	if st.Duration <= base[0].Duration {
		t.Errorf("spiked duration %v not slower than baseline %v", st.Duration, base[0].Duration)
	}
	if st.LossFingerprint != base[0].LossFingerprint {
		t.Error("kernel spikes must not change computed values")
	}
	if st.FaultSummary() == "-" {
		t.Error("FaultSummary should report the spikes")
	}
}

func TestOnDemandSwapInAbandonment(t *testing.T) {
	// A partial transfer failure rate lets some evictions reach host
	// memory, after which the failed on-demand swap-in of an Out tensor
	// must degrade to lineage replay. Scanning a few seeds keeps the test
	// robust to hash placement while each individual run stays
	// deterministic.
	want := oracle(t, graph.GraphModeOptions())
	sawOnDemandFallback := false
	for seed := uint64(1); seed <= 10; seed++ {
		plan := fault.Plan{Seed: seed, TransferFailRate: 0.6, MaxTransferRetries: 0}
		sts, err := runFaulted(t, 128*hw.MiB, plan, 2)
		if err != nil {
			if !errors.Is(err, ErrTransferFailed) && !errors.Is(err, ErrIterationOOM) {
				t.Fatalf("seed %d: untyped failure: %v", seed, err)
			}
			continue
		}
		for i, st := range sts {
			if st.LossFingerprint != want[i].LossFingerprint {
				t.Errorf("seed %d iter %d: loss fingerprint diverged", seed, i)
			}
			if st.SwapFallbacks > 0 && st.RecomputeCount > 0 {
				sawOnDemandFallback = true
			}
		}
	}
	if !sawOnDemandFallback {
		t.Error("no seed in 1..10 exercised the swap→recompute fallback; widen the scan")
	}
}

func TestOOMErrorChain(t *testing.T) {
	// An unresolvable OOM must expose the full cause chain: the iteration
	// sentinel, the memory sentinel and the structured OOMError.
	g := testCNN(t, graph.GraphModeOptions())
	s, err := NewSession(g, Config{Device: device(24 * hw.MiB)})
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.RunIteration()
	if !errors.Is(err, ErrIterationOOM) {
		t.Fatalf("err = %v, want ErrIterationOOM", err)
	}
	if !errors.Is(err, memory.ErrOOM) {
		t.Fatalf("err = %v, should unwrap to memory.ErrOOM", err)
	}
	var oe *memory.OOMError
	if !errors.As(err, &oe) {
		t.Fatalf("err = %v, should carry a *memory.OOMError", err)
	}
	if oe.Requested <= 0 {
		t.Errorf("OOMError.Requested = %d, want > 0", oe.Requested)
	}
}

func TestTransferErrorChain(t *testing.T) {
	te := &TransferError{Dir: fault.H2D, TensorID: "t", Bytes: 64, Attempts: 3}
	if !errors.Is(te, ErrTransferFailed) {
		t.Error("TransferError should match ErrTransferFailed")
	}
	if !errors.Is(te, fault.ErrInjected) {
		t.Error("TransferError should match fault.ErrInjected")
	}
	ie := invariant("release", "t1", errors.New("boom"))
	if !errors.Is(ie, ErrInvariant) {
		t.Error("InvariantError should match ErrInvariant")
	}
}
