package exec

import (
	"testing"

	"capuchin/internal/graph"
	"capuchin/internal/hw"
)

// TestSessionResetPeakBetweenRuns is the regression test for per-run peak
// scoping at the session level: without ResetPeak, a second Run on the
// same session inherits the first Run's pool high-water mark in its
// IterStats.PeakBytes.
func TestSessionResetPeakBetweenRuns(t *testing.T) {
	g := testCNN(t, graph.GraphModeOptions())
	s, err := NewSession(g, Config{Device: hw.P100()})
	if err != nil {
		t.Fatal(err)
	}
	first, err := s.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	peak1 := first[len(first)-1].PeakBytes
	if peak1 <= 0 {
		t.Fatalf("first run peak = %d", peak1)
	}

	s.ResetPeak()
	if got := s.Pool().Peak(); got != s.Pool().Used() {
		t.Fatalf("pool peak after ResetPeak = %d, want current use %d", got, s.Pool().Used())
	}
	// The rescoped peak must drop below the transient first-run peak: only
	// persistent tensors (weights, optimizer state) remain resident
	// between iterations, and they are a strict subset of the in-flight
	// working set that set peak1.
	if got := s.Pool().Peak(); got >= peak1 {
		t.Fatalf("rescoped peak %d did not drop below run-1 peak %d", got, peak1)
	}

	second, err := s.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	peak2 := second[0].PeakBytes
	if peak2 <= 0 || peak2 > peak1 {
		t.Fatalf("second run peak = %d, want a fresh per-run peak at most the first run's %d", peak2, peak1)
	}
}
