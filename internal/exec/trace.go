package exec

import (
	"capuchin/internal/memory"
	"capuchin/internal/obs"
	"capuchin/internal/sim"
)

// This file is the executor's observability surface. Every helper is a
// no-op without an attached tracer/metrics registry, and none of them
// touches simulation state: with Config.Tracer nil the run is
// byte-identical to an untraced one.

// decide records a decision in the audit log, stamping the deciding
// policy, the current virtual time and the iteration when unset.
func (s *Session) decide(d obs.Decision) {
	if s.tr == nil {
		return
	}
	if d.Policy == "" {
		d.Policy = s.policy.Name()
	}
	if d.At == 0 {
		d.At = s.now()
	}
	d.Iter = s.iter
	s.tr.Decide(d)
}

// memEvent emits an alloc/free instant for a tensor with the device
// allocator and host arena sampled, feeding the memory profiler and the
// Perfetto counter tracks. Callers must hold s.tr != nil.
func (s *Session) memEvent(cat, detail, tensorID string, bytes int64, at sim.Time) {
	snap := memory.Snap(s.pool)
	s.tr.Emit(obs.Event{
		Kind: obs.KindInstant, Cat: cat, Name: cat + " " + tensorID,
		Tensor: tensorID, Detail: detail, Start: at, End: at, Iter: s.iter,
		Bytes:       bytes,
		Used:        snap.Used,
		Free:        snap.Free,
		LargestFree: snap.LargestFree,
		HostUsed:    s.host.Used(),
	})
}

// laneInstant emits a point event on a stream lane (fault injections, OOM
// markers). Callers must hold s.tr != nil.
func (s *Session) laneInstant(cat, name, lane, detail string, at sim.Time) {
	s.tr.Emit(obs.Event{
		Kind: obs.KindInstant, Cat: cat, Name: name, Lane: lane,
		Detail: detail, Start: at, End: at, Iter: s.iter,
	})
}

// stallTo advances the compute stream to at, charging the wait to the
// iteration's stall time and to the timeline-reconstruction penalty
// (§5.2), and traces it as a stall span. It replaces the hand-rolled
// stall accounting previously duplicated at every synchronization site.
func (s *Session) stallTo(at sim.Time, reason string) {
	now := s.now()
	if at <= now {
		return
	}
	d := at - now
	s.stats.StallTime += d
	s.penalty += d
	s.compute.AdvanceTo(at)
	if s.tr != nil {
		s.tr.Emit(obs.Event{
			Kind: obs.KindSpan, Cat: "stall", Name: "stall:" + reason,
			Lane: "compute", Start: now, End: at, Iter: s.iter, Detail: reason,
		})
	}
	if s.met != nil {
		s.met.Observe("stall/"+reason, d)
	}
}

// exposedStall charges compute time lost waiting on transfer dependencies
// that Run already absorbed (the stream jumped from preRun to start).
func (s *Session) exposedStall(preRun, start sim.Time) {
	exposed := start - preRun
	if exposed <= 0 {
		return
	}
	s.stats.StallTime += exposed
	s.penalty += exposed
	if s.tr != nil {
		s.tr.Emit(obs.Event{
			Kind: obs.KindSpan, Cat: "stall", Name: "stall:input-wait",
			Lane: "compute", Start: preRun, End: start, Iter: s.iter, Detail: "input-wait",
		})
	}
	if s.met != nil {
		s.met.Observe("stall/input-wait", exposed)
	}
}
