package exec

import (
	"fmt"
	"testing"

	"capuchin/internal/graph"
	"capuchin/internal/hw"
	"capuchin/internal/ops"
	"capuchin/internal/tensor"
)

// benchCNN is testCNN for benchmarks: a small conv net built without
// *testing.T plumbing.
func benchCNN(b *testing.B) *graph.Graph {
	bld := graph.NewBuilder("benchcnn")
	x := bld.Input("data", tensor.Shape{8, 3, 64, 64}, tensor.Float32)
	labels := bld.Input("labels", tensor.Shape{8, 10}, tensor.Float32)
	h := x
	ch := int64(16)
	for i := 0; i < 4; i++ {
		w := bld.Variable(fmt.Sprintf("conv%d_w", i), tensor.Shape{ch * 2, h.Shape[1], 3, 3})
		h = bld.Apply1(fmt.Sprintf("conv%d", i), ops.Conv2D{StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}, h, w)
		h = bld.Apply1(fmt.Sprintf("relu%d", i), ops.ReLU{}, h)
		ch *= 2
	}
	h = bld.Apply1("gap", ops.Pool{Kind: ops.AvgPoolKind}, h)
	flat := bld.Apply1("flatten", ops.Reshape{To: tensor.Shape{8, h.Shape.Elems() / 8}}, h)
	w := bld.Variable("fc_w", tensor.Shape{flat.Shape[1], 10})
	logits := bld.Apply1("fc", ops.MatMul{}, flat, w)
	loss := bld.Apply1("loss", ops.SoftmaxCrossEntropy{}, logits, labels)
	g, err := bld.Build(loss, graph.GraphModeOptions())
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkHotPathSessionIteration is the executor's inner loop in
// isolation: an uncontended training iteration on a warm session. After
// the first iteration binds every tensor, the steady state — access
// accounting, LRU touches, stream advancement, deferred frees — must be
// allocation-free.
func BenchmarkHotPathSessionIteration(b *testing.B) {
	s, err := NewSession(benchCNN(b), Config{Device: device(4 * hw.GiB)})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := s.RunIteration(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.RunIteration(); err != nil {
			b.Fatal(err)
		}
	}
}
