package exec

import (
	"testing"

	"capuchin/internal/graph"
	"capuchin/internal/hw"
	"capuchin/internal/obs"
	"capuchin/internal/sim"
)

// staticWindows is a fixed CommModel for tests.
type staticWindows []CommWindow

func (m staticWindows) WindowAt(t sim.Time) (CommWindow, bool) {
	for _, w := range m {
		if t >= w.Start && t < w.End {
			return w, true
		}
	}
	return CommWindow{}, false
}

// periodicWindows models a repeating all-reduce schedule: a window of the
// given width opens every period.
type periodicWindows struct {
	period, width sim.Time
	slowdown      float64
}

func (m periodicWindows) WindowAt(t sim.Time) (CommWindow, bool) {
	if t < 0 {
		return CommWindow{}, false
	}
	base := t - t%m.period
	if t < base+m.width {
		return CommWindow{Start: base, End: base + m.width, Slowdown: m.slowdown}, true
	}
	return CommWindow{}, false
}

// TestCommWindowlessIdentity: a comm-aware session whose model never
// reports a window must be byte-identical to an isolated session, even
// under memory pressure — the N=1 leg of the cluster differential oracle.
func TestCommWindowlessIdentity(t *testing.T) {
	run := func(cfg Config) []IterStats {
		s, err := NewSession(testCNN(t, graph.GraphModeOptions()), cfg)
		if err != nil {
			t.Fatal(err)
		}
		sts, err := s.Run(2)
		if err != nil {
			t.Fatal(err)
		}
		return sts
	}
	base := Config{Device: device(128 * hw.MiB), Policy: lruPolicy{}}
	aware := base
	aware.Comm, aware.CommAware = staticWindows{}, true
	got, want := run(aware), run(base)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("iter %d: windowless comm-aware run diverged\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
}

func TestDeferForComm(t *testing.T) {
	s, err := NewSession(testCNN(t, graph.GraphModeOptions()), Config{Device: device(2 * hw.GiB)})
	if err != nil {
		t.Fatal(err)
	}
	link := s.dev.H2D
	const bytes = 64 * hw.MiB
	tt := link.TransferTime(bytes)

	// No model / not aware: pass-through, no audit window.
	if adj, _, ok := s.deferForComm(s.h2d, link, bytes, 5); adj != 5 || ok {
		t.Errorf("nil comm model adjusted the transfer: %v %v", adj, ok)
	}
	s.cfg.Comm = staticWindows{{Start: 0, End: tt, Slowdown: 4}}
	if adj, _, ok := s.deferForComm(s.h2d, link, bytes, 5); adj != 5 || ok {
		t.Errorf("comm-oblivious session adjusted the transfer: %v %v", adj, ok)
	}
	s.cfg.CommAware = true

	// Window drains after one transfer time: deferring (end + tt) beats
	// contending (0 + 4*tt), so the start moves to the window end.
	if adj, w, ok := s.deferForComm(s.h2d, link, bytes, 0); !ok || adj != tt || w.Slowdown != 4 {
		t.Errorf("defer not taken: adj=%v ok=%v w=%+v (transfer time %v)", adj, ok, w, tt)
	}

	// Window drains far in the future: contending (4*tt) beats deferring
	// (10*tt + tt), so the start is untouched but the window is audited.
	s.cfg.Comm = staticWindows{{Start: 0, End: 10 * tt, Slowdown: 4}}
	if adj, _, ok := s.deferForComm(s.h2d, link, bytes, 0); !ok || adj != 0 {
		t.Errorf("uneconomic defer taken: adj=%v ok=%v", adj, ok)
	}

	// Start outside every window: pass-through.
	if adj, _, ok := s.deferForComm(s.h2d, link, bytes, 20*tt); adj != 20*tt || ok {
		t.Errorf("windowless instant adjusted: %v %v", adj, ok)
	}
}

func TestLinkSlowdownCombines(t *testing.T) {
	s, err := NewSession(testCNN(t, graph.GraphModeOptions()), Config{Device: device(2 * hw.GiB)})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.linkSlowdown(0); got != 1 {
		t.Errorf("idle link slowdown = %v", got)
	}
	s.cfg.Comm = staticWindows{
		{Start: 0, End: sim.Millisecond, Slowdown: 3},
		{Start: sim.Millisecond, End: 2 * sim.Millisecond, Slowdown: 0.5}, // degenerate: ignored
	}
	if got := s.linkSlowdown(0); got != 3 {
		t.Errorf("in-window slowdown = %v, want 3", got)
	}
	if got := s.linkSlowdown(sim.Millisecond + 1); got != 1 {
		t.Errorf("slowdown <= 1 window applied: %v", got)
	}
	if got := s.linkSlowdown(5 * sim.Millisecond); got != 1 {
		t.Errorf("post-window slowdown = %v", got)
	}
}

// TestCommContentionIsPhysics: all-reduce windows degrade swap traffic
// whether or not the policy is comm-aware, so a pressured run with
// collective traffic is slower than an isolated one.
func TestCommContentionIsPhysics(t *testing.T) {
	run := func(comm CommModel, aware bool) IterStats {
		s, err := NewSession(testCNN(t, graph.GraphModeOptions()),
			Config{Device: device(128 * hw.MiB), Policy: lruPolicy{}, Comm: comm, CommAware: aware})
		if err != nil {
			t.Fatal(err)
		}
		sts, err := s.Run(2)
		if err != nil {
			t.Fatal(err)
		}
		st := sts[len(sts)-1]
		if st.PassiveEvicts == 0 && st.OnDemandInCount == 0 {
			t.Fatal("no swap traffic; the contention test is vacuous")
		}
		return st
	}
	isolated := run(nil, false)
	windows := periodicWindows{period: 2 * sim.Millisecond, width: sim.Millisecond, slowdown: 8}
	contended := run(windows, false)
	if contended.Duration <= isolated.Duration {
		t.Errorf("collective contention did not slow the run: isolated %v, contended %v",
			isolated.Duration, contended.Duration)
	}
	// The comm-aware run sees the same physics but schedules around it:
	// never slower than oblivious, under any window schedule.
	awareSt := run(windows, true)
	if awareSt.Duration > contended.Duration {
		t.Errorf("comm-aware (%v) slower than comm-oblivious (%v)", awareSt.Duration, contended.Duration)
	}
	if awareSt.ParamFingerprint != isolated.ParamFingerprint ||
		contended.ParamFingerprint != isolated.ParamFingerprint {
		t.Error("comm scheduling changed the computed result")
	}
}

// TestCommDeferAudited: every comm-deferred transfer must land in the
// decision audit with the comm-window input that justified it.
func TestCommDeferAudited(t *testing.T) {
	col := obs.NewCollector()
	windows := periodicWindows{period: 2 * sim.Millisecond, width: sim.Millisecond, slowdown: 8}
	s, err := NewSession(testCNN(t, graph.GraphModeOptions()),
		Config{Device: device(128 * hw.MiB), Policy: lruPolicy{}, Comm: windows, CommAware: true, Tracer: col})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(2); err != nil {
		t.Fatal(err)
	}
	var deferred int
	for _, d := range col.Decisions() {
		if d.Action != "comm-defer" {
			continue
		}
		deferred++
		if d.CommSlowdown <= 1 || d.CommUntil <= 0 {
			t.Errorf("comm-defer decision missing its window input: %+v", d)
		}
	}
	if deferred == 0 {
		t.Error("no comm-defer decisions recorded under dense all-reduce windows")
	}
}
