// Package exec executes training graphs on the simulated device: it manages
// tensor residency, allocates through the BFC pool, schedules kernels and
// PCIe transfers on virtual-time streams, and reports every tensor access
// to a pluggable memory-management Policy — the integration surface that
// Capuchin, vDNN and gradient checkpointing implement.
package exec

import (
	"capuchin/internal/sim"
	"capuchin/internal/tensor"
)

// AccessKind classifies a tensor access event.
type AccessKind int

// Access kinds.
const (
	// Produce: the tensor was written by its producing operation.
	Produce AccessKind = iota
	// Read: the tensor was consumed as an operation input.
	Read
	// Dealloc: the tensor died (reference count reached zero) and its
	// device memory was released. Policies use Dealloc events to
	// reconstruct the hypothetical memory-usage curve.
	Dealloc
)

// String implements fmt.Stringer.
func (k AccessKind) String() string {
	switch k {
	case Produce:
		return "produce"
	case Read:
		return "read"
	case Dealloc:
		return "dealloc"
	default:
		return "access(?)"
	}
}

// Access is one tensor access event reported to the policy. Mirrors the
// tuple Capuchin's Tensor Access Tracker records: {tensor_id, access_count,
// timestamp} (§5.2), plus executor context.
type Access struct {
	Tensor *tensor.Tensor
	Kind   AccessKind
	// Count is the tensor's access count including this access.
	Count int
	// At is the access timestamp with on-demand-stall time already
	// subtracted, i.e. on the hypothetical infinite-memory timeline the
	// paper's tracker reconstructs (§5.2). Reads are stamped at operation
	// start, produces at operation end.
	At sim.Time
	// Raw is the unadjusted virtual time of the access.
	Raw sim.Time
	// Stall is how long the consuming operation had to wait for this
	// tensor (swap-in still in flight at the back-access): the signal for
	// Capuchin's feedback-driven in-trigger adjustment (§4.4).
	Stall sim.Time
	// InFlight reports that the tensor was mid-swap-in when accessed,
	// even if the wait was fully hidden.
	InFlight bool
	// NodeID and Iter identify the consuming/producing node and iteration.
	NodeID string
	Iter   int
}

// Policy decides when to evict, prefetch and recompute. Implementations
// must be deterministic: they are driven entirely by the access stream and
// the Env.
type Policy interface {
	// Name identifies the policy in stats and benchmark output.
	Name() string
	// BeginIteration is called before the first node of each iteration.
	BeginIteration(iter int, env *Env)
	// OnAccess is called on every tensor access. The policy may invoke
	// Env actions; asynchronous actions anchor at the access's effect
	// time (operation end).
	OnAccess(acc Access, env *Env)
	// OnOOM is called when an allocation of need bytes fails after all
	// in-flight frees have been awaited. The policy returns tensors to
	// evict synchronously (Capuchin's passive mode) or false to fail the
	// iteration with OOM (the framework default).
	OnOOM(need int64, env *Env) ([]*tensor.Tensor, bool)
	// EndIteration is called after the iteration's final node and the
	// end-of-iteration barrier.
	EndIteration(iter int, env *Env)
	// TracksAccesses reports whether the policy performs runtime access
	// tracking; the executor then charges the device's per-access
	// tracking overhead (§6.3.2).
	TracksAccesses() bool
}

// OOMHandler is the optional eviction hook for policies that answer memory
// pressure with actions richer than the passive host-swap victim list OnOOM
// supports — h-DTR, for example, frees tensors for recomputation. When a
// policy implements it, the executor's OOM escalation calls HandleOOM
// instead of OnOOM. progress=true means the handler freed device memory or
// queued an asynchronous release, so the allocation should be retried;
// progress=false with ok=true lets the executor try its last resorts
// (completing an in-flight swap-in) before failing; ok=false fails the
// iteration with OOM immediately.
type OOMHandler interface {
	HandleOOM(need int64, env *Env) (progress, ok bool)
}

// NullPolicy is original TensorFlow: no memory management, OOM is fatal.
type NullPolicy struct{}

// Name implements Policy.
func (NullPolicy) Name() string { return "tf-ori" }

// BeginIteration implements Policy.
func (NullPolicy) BeginIteration(int, *Env) {}

// OnAccess implements Policy.
func (NullPolicy) OnAccess(Access, *Env) {}

// OnOOM implements Policy.
func (NullPolicy) OnOOM(int64, *Env) ([]*tensor.Tensor, bool) { return nil, false }

// EndIteration implements Policy.
func (NullPolicy) EndIteration(int, *Env) {}

// TracksAccesses implements Policy.
func (NullPolicy) TracksAccesses() bool { return false }
