package exec

import (
	"fmt"

	"capuchin/internal/fault"
	"capuchin/internal/graph"
	"capuchin/internal/hw"
	"capuchin/internal/memory"
	"capuchin/internal/obs"
	"capuchin/internal/ops"
	"capuchin/internal/sim"
	"capuchin/internal/tensor"
)

// Mode selects the framework execution mode (§2.2).
type Mode int

// Execution modes.
const (
	// GraphMode executes a pre-built, optimized graph with precise
	// reference-count deallocation.
	GraphMode Mode = iota
	// EagerMode executes imperatively: a CPU dispatch stream serializes
	// ahead of kernels and the autograd tape retains every forward
	// activation until the iteration ends.
	EagerMode
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == EagerMode {
		return "eager"
	}
	return "graph"
}

// Config configures a Session.
type Config struct {
	Device hw.DeviceSpec
	// HostMemory bounds pinned CPU staging memory (default 256 GiB, the
	// paper testbed's DRAM).
	HostMemory int64
	Mode       Mode
	// Policy is the memory-management policy; nil means NullPolicy.
	Policy Policy
	// Allocator selects "bfc" (default) or "firstfit".
	Allocator string
	// CoupledSwap makes every node wait for all outstanding swap-outs
	// before issuing, reproducing vDNN's layer-wise synchronization
	// (§3.1, Fig. 1). Capuchin's decoupled mode leaves this false and
	// waits only on OOM (§5.3).
	CoupledSwap bool
	// CollectiveRecompute keeps intermediate recomputation targets
	// produced while replaying a lineage, memory permitting (§5.3).
	CollectiveRecompute bool
	// RecomputeHeadroom is the free-memory floor below which collective
	// recomputation stops retaining intermediates. Zero means 5% of
	// device memory.
	RecomputeHeadroom int64
	// RecordSpans enables stream span recording for timeline figures.
	RecordSpans bool
	// Faults is the deterministic fault-injection plan; the zero value
	// injects nothing and leaves every virtual-time outcome untouched.
	Faults fault.Plan
	// Comm describes pending collective traffic on this replica's host
	// link (set by the cluster scheduler). nil models an isolated device.
	// Transfers overlapping a comm window are degraded by the window's
	// slowdown regardless of CommAware — contention is physics.
	Comm CommModel
	// CommAware additionally lets the executor defer a swap transfer past
	// an all-reduce window when that finishes it earlier than contending
	// (the comm-aware scheduling rule). Off, windows only slow transfers.
	CommAware bool
	// Tracer receives structured observability events and policy decision
	// audit records. nil disables tracing entirely: no event is
	// constructed and the virtual-time outcome is identical.
	Tracer obs.Tracer
	// Metrics aggregates counters and virtual-time histograms across the
	// run; nil disables collection. Multiple sessions may share one
	// registry (it is concurrency-safe).
	Metrics *obs.Metrics
}

// Session executes iterations of one training graph.
type Session struct {
	cfg    Config
	g      *graph.Graph
	dev    hw.DeviceSpec
	policy Policy

	pool memory.Pool
	host *memory.HostArena

	compute *sim.Stream
	h2d     *sim.Stream
	d2h     *sim.Stream
	cpu     *sim.Stream // eager dispatch; nil in graph mode

	// pendingFrees holds device memory releases that complete in the
	// future (swap-outs in flight), keyed by tensor ID.
	pendingFrees sim.PendingSet

	// Hot-path session state is interned: every per-tensor table below is
	// a dense slice keyed by tensor.Idx (assigned by the graph reindex),
	// so the steady-state inner loop never hashes a tensor ID string.
	// tlist mirrors g.TensorList() and translates Idx back to the tensor.
	tlist []*tensor.Tensor

	// swapInAt/swapInOn track the completion time of in-flight prefetches
	// and on-demand swap-ins; swapInList holds the active indices so
	// clearing is O(in-flight), not O(tensors).
	swapInAt   []sim.Time
	swapInOn   []bool
	swapInList []int32

	// refsInit counts scheduled uses per tensor (static per graph); refs
	// is the per-iteration working copy, restored by copy() each
	// iteration. lastUse holds the schedule index of each tensor's final
	// read (-1 when never read); updateBarrier is the index of the first
	// in-place parameter update. Together they bound which tensors may be
	// degraded from swapping to recomputation: a replay after a parameter
	// update would read modified weights and change the computed values.
	refsInit      []int32
	refs          []int32
	lastUse       []int32
	updateBarrier int
	// retained marks tensors pinned by the eager tape until iteration end
	// (static per graph: the tape retains every forward activation).
	retained []bool

	// lru orders resident tensors by last access for passive eviction
	// (the paper scans the tensor access list from the beginning, §5.2).
	// It is an intrusive doubly-linked list over index arrays: lruPrev and
	// lruNext chain tensor indices, -1 terminates, and inLRU marks
	// membership. No nodes are allocated in steady state.
	lruPrev, lruNext []int32
	lruHead, lruTail int32
	lruLen           int
	inLRU            []bool

	// pinned marks tensors that the currently executing node reads or
	// writes; they must not be chosen as passive-eviction victims.
	// pinStack records pin order so nested scopes (executeNode, recursive
	// replay) unwind by truncating to a saved depth — no per-node slice.
	pinned   []bool
	pinStack []int32

	// Reusable scratch buffers for executeNode's per-input loops and
	// replay's per-depth state; see their use sites for ownership rules.
	scStalls   []sim.Time
	scInflight []bool
	scFPs      []uint64
	scVictims  []*tensor.Tensor
	replayBufs []replayBuf
	regen      []bool
	regenList  []int32

	// algoCache memoizes op.Algorithms per node position: the device and
	// every input shape are fixed for a session's lifetime, so the
	// candidate list is computed once per node.
	algoCache [][]ops.Algorithm

	// env is the policy-facing view, allocated once per session.
	env Env

	// actionAnchor is the virtual time at which policy-triggered
	// asynchronous actions start (the current access's effect point).
	actionAnchor sim.Time
	// penalty accumulates stall time subtracted from access timestamps to
	// reconstruct the infinite-memory timeline (§5.2).
	penalty sim.Time

	// inj answers fault-injection queries; disabled (but never nil) when
	// Config.Faults is the zero plan.
	inj *fault.Injector
	// defErr records an invariant violation raised inside a policy-driven
	// Env action, whose bool-returning signature cannot carry it; the
	// executor checks it at the next node boundary and fails the
	// iteration with the structured cause.
	defErr error

	// tr and met mirror Config.Tracer/Config.Metrics; both may be nil
	// (tracing and metrics off).
	tr  obs.Tracer
	met *obs.Metrics

	// gradIDs marks tensors consumed as gradients by ApplyGradient nodes;
	// gradEvents records their production times each iteration for the
	// cluster's all-reduce schedule. Pure bookkeeping: neither perturbs
	// any virtual-time outcome.
	gradIDs    []bool
	gradEvents []GradEvent

	iter      int
	stats     IterStats
	trackCost sim.Time
	startTime sim.Time
	failed    bool
}

// replayBuf is the per-recursion-depth scratch state of a lineage replay.
type replayBuf struct {
	fps []uint64
}

// NewSession prepares a session: builds the allocator, pre-allocates
// persistent tensors (weights live on device for the whole run, §2.1) and
// seeds their fingerprints.
func NewSession(g *graph.Graph, cfg Config) (*Session, error) {
	if cfg.Device.MemoryBytes <= 0 {
		return nil, fmt.Errorf("exec: device %q has no memory configured", cfg.Device.Name)
	}
	if cfg.HostMemory == 0 {
		cfg.HostMemory = 256 * hw.GiB
	}
	if cfg.Policy == nil {
		cfg.Policy = NullPolicy{}
	}
	if cfg.RecomputeHeadroom == 0 {
		cfg.RecomputeHeadroom = cfg.Device.MemoryBytes / 20
	}
	var pool memory.Pool
	switch cfg.Allocator {
	case "", "bfc":
		pool = memory.NewBFC(cfg.Device.MemoryBytes)
	case "firstfit":
		pool = memory.NewFirstFit(cfg.Device.MemoryBytes)
	default:
		return nil, fmt.Errorf("exec: unknown allocator %q", cfg.Allocator)
	}
	g.EnsureIndexed()
	s := &Session{
		cfg:     cfg,
		g:       g,
		dev:     cfg.Device,
		policy:  cfg.Policy,
		pool:    pool,
		host:    memory.NewHostArena(cfg.HostMemory),
		compute: sim.NewStream("compute"),
		h2d:     sim.NewStream("h2d"),
		d2h:     sim.NewStream("d2h"),
		inj:     fault.NewInjector(cfg.Faults),
		tr:      cfg.Tracer,
		met:     cfg.Metrics,
	}
	s.env = Env{s: s}
	s.initTables()
	for _, n := range g.Nodes {
		if _, isUpdate := n.Op.(ops.ApplyGradient); isUpdate && len(n.Inputs) > 1 {
			s.gradIDs[n.Inputs[1].Idx] = true
		}
	}
	if cfg.Mode == EagerMode {
		s.cpu = sim.NewStream("cpu")
	}
	if cfg.RecordSpans {
		s.compute.SetRecording(true)
		s.h2d.SetRecording(true)
		s.d2h.SetRecording(true)
	}
	if s.policy.TracksAccesses() {
		s.trackCost = s.dev.TrackAccess
	}

	// Persistent tensors: allocate once, seed fingerprints.
	for _, n := range g.Nodes {
		for _, t := range n.Outputs {
			if !t.Persistent {
				continue
			}
			a, err := pool.Alloc(t.Bytes())
			if err != nil {
				return nil, fmt.Errorf("exec: model parameters do not fit on device: %w", err)
			}
			t.Alloc = a
			t.Fingerprint = tensor.HashSeed(t.ID)
			if err := t.TransitionTo(tensor.In); err != nil {
				return nil, err
			}
			if s.tr != nil {
				s.memEvent("alloc", "persistent", t.ID, t.Bytes(), 0)
			}
		}
	}
	return s, nil
}

// initTables sizes the interned per-tensor tables and computes the static
// schedule analysis: reference counts, final-read positions, the update
// barrier, eager-tape retention and the gradient-tensor marks. All of it
// is a pure function of the (immutable) graph, so it runs once per
// session instead of once per iteration.
func (s *Session) initTables() {
	s.tlist = s.g.TensorList()
	nt := len(s.tlist)
	s.refsInit = make([]int32, nt)
	s.refs = make([]int32, nt)
	s.lastUse = make([]int32, nt)
	s.retained = make([]bool, nt)
	s.gradIDs = make([]bool, nt)
	s.swapInAt = make([]sim.Time, nt)
	s.swapInOn = make([]bool, nt)
	s.lruPrev = make([]int32, nt)
	s.lruNext = make([]int32, nt)
	s.inLRU = make([]bool, nt)
	s.pinned = make([]bool, nt)
	s.regen = make([]bool, nt)
	s.algoCache = make([][]ops.Algorithm, len(s.g.Nodes))
	s.lruHead, s.lruTail = -1, -1

	s.updateBarrier = len(s.g.Nodes)
	for i, n := range s.g.Nodes {
		if _, isUpdate := n.Op.(ops.ApplyGradient); isUpdate && i < s.updateBarrier {
			s.updateBarrier = i
		}
		for _, in := range n.Inputs {
			if !in.Persistent {
				s.refsInit[in.Idx]++
				s.lastUse[in.Idx] = int32(i)
			}
		}
	}
	// Eager tape retention: imperative execution holds every forward
	// activation until backward completes (§2.2, §6.4.1).
	if s.cfg.Mode == EagerMode {
		for _, n := range s.g.Nodes {
			if n.Phase != graph.Forward {
				continue
			}
			for _, out := range n.Outputs {
				if !out.Persistent {
					s.retained[out.Idx] = true
				}
			}
		}
	}
}

// Graph returns the session's graph.
func (s *Session) Graph() *graph.Graph { return s.g }

// Pool exposes allocator statistics.
func (s *Session) Pool() memory.Pool { return s.pool }

// Host exposes pinned-memory statistics.
func (s *Session) Host() *memory.HostArena { return s.host }

// ResetPeak rescopes the device and host high-water marks to current
// usage. Sequential jobs reusing one session's allocator (a fleet device
// running job after job, or back-to-back Run calls profiling different
// regimes) call this between jobs so the next IterStats.PeakBytes reports
// that job's own peak rather than inheriting its predecessor's.
func (s *Session) ResetPeak() {
	s.pool.ResetPeak()
	s.host.ResetPeak()
}

// Streams returns the compute, H2D and D2H streams for span inspection.
func (s *Session) Streams() (compute, h2d, d2h *sim.Stream) {
	return s.compute, s.h2d, s.d2h
}

// now is the current virtual time on the compute stream.
func (s *Session) now() sim.Time { return s.compute.AvailableAt() }

// touchLRU moves t to the most-recently-used end of the eviction order.
func (s *Session) touchLRU(t *tensor.Tensor) {
	i := t.Idx
	if s.inLRU[i] {
		if s.lruTail == i {
			return
		}
		// Unlink from the middle (i is not the tail here).
		p, n := s.lruPrev[i], s.lruNext[i]
		if p >= 0 {
			s.lruNext[p] = n
		} else {
			s.lruHead = n
		}
		s.lruPrev[n] = p
	} else {
		s.inLRU[i] = true
		s.lruLen++
	}
	s.lruPrev[i] = s.lruTail
	s.lruNext[i] = -1
	if s.lruTail >= 0 {
		s.lruNext[s.lruTail] = i
	} else {
		s.lruHead = i
	}
	s.lruTail = i
}

// dropLRU removes t from the eviction order.
func (s *Session) dropLRU(t *tensor.Tensor) {
	i := t.Idx
	if !s.inLRU[i] {
		return
	}
	p, n := s.lruPrev[i], s.lruNext[i]
	if p >= 0 {
		s.lruNext[p] = n
	} else {
		s.lruHead = n
	}
	if n >= 0 {
		s.lruPrev[n] = p
	} else {
		s.lruTail = p
	}
	s.inLRU[i] = false
	s.lruPrev[i], s.lruNext[i] = 0, 0
	s.lruLen--
}

// resetLRU empties the eviction order in O(members).
func (s *Session) resetLRU() {
	for i := s.lruHead; i >= 0; {
		n := s.lruNext[i]
		s.inLRU[i] = false
		s.lruPrev[i], s.lruNext[i] = 0, 0
		i = n
	}
	s.lruHead, s.lruTail = -1, -1
	s.lruLen = 0
}

// pinBase reports the current pin-stack depth; unpinTo restores it.
func (s *Session) pinBase() int { return len(s.pinStack) }

// pinOne marks one tensor untouchable by passive eviction.
func (s *Session) pinOne(t *tensor.Tensor) {
	if !s.pinned[t.Idx] {
		s.pinned[t.Idx] = true
		s.pinStack = append(s.pinStack, t.Idx)
	}
}

// pinAll pins every tensor in ts.
func (s *Session) pinAll(ts []*tensor.Tensor) {
	for _, t := range ts {
		s.pinOne(t)
	}
}

// unpinTo unwinds the pin stack to a depth saved by pinBase, clearing
// exactly the pins taken since.
func (s *Session) unpinTo(base int) {
	for i := len(s.pinStack) - 1; i >= base; i-- {
		s.pinned[s.pinStack[i]] = false
	}
	s.pinStack = s.pinStack[:base]
}

// swapInSet records the completion time of an in-flight swap-in.
func (s *Session) swapInSet(t *tensor.Tensor, at sim.Time) {
	i := t.Idx
	if !s.swapInOn[i] {
		s.swapInOn[i] = true
		s.swapInList = append(s.swapInList, i)
	}
	s.swapInAt[i] = at
}

// swapInClear drops index i from the in-flight swap-in set.
func (s *Session) swapInClear(i int32) {
	if !s.swapInOn[i] {
		return
	}
	s.swapInOn[i] = false
	for k, v := range s.swapInList {
		if v == i {
			s.swapInList = append(s.swapInList[:k], s.swapInList[k+1:]...)
			break
		}
	}
}

// clearSwapIns empties the in-flight swap-in set in O(in-flight).
func (s *Session) clearSwapIns() {
	for _, i := range s.swapInList {
		s.swapInOn[i] = false
	}
	s.swapInList = s.swapInList[:0]
}

// The three helpers below are the only places the executor couples a
// residency transition to the eviction order. Every allocation that makes
// a tensor resident, every swap-in landing and every device-memory
// release goes through one of them, so the LRU cannot silently diverge
// from the allocator (CheckResidencyInvariant pins the coupling in the
// property tests).

// becomeResident marks a tensor that just received device memory as
// resident and enters it into the eviction order. ctx labels the
// invariant error on an illegal transition.
func (s *Session) becomeResident(t *tensor.Tensor, ctx string) error {
	if err := t.TransitionTo(tensor.In); err != nil {
		return invariant(ctx, t.ID, err)
	}
	s.touchLRU(t)
	return nil
}

// landSwapIn completes an in-flight or on-demand swap-in: the tensor
// becomes resident, its host copy is released and it re-enters the
// eviction order.
func (s *Session) landSwapIn(t *tensor.Tensor, ctx string) error {
	if err := t.TransitionTo(tensor.In); err != nil {
		return invariant(ctx, t.ID, err)
	}
	if s.host.HoldsIdx(int(t.Idx)) {
		if err := s.host.ReleaseIdx(int(t.Idx), t.ID); err != nil {
			return invariant(ctx, t.ID, err)
		}
	}
	s.touchLRU(t)
	return nil
}

// freeDevice releases a tensor's device memory, removes it from the
// eviction order and transitions it to next, in that order, so the LRU
// never holds a tensor without a live allocation.
func (s *Session) freeDevice(t *tensor.Tensor, next tensor.Status, ctx string) error {
	if err := s.pool.Free(t.Alloc); err != nil {
		return invariant(ctx, t.ID, err)
	}
	t.Alloc = nil
	s.dropLRU(t)
	if err := t.TransitionTo(next); err != nil {
		return invariant(ctx, t.ID, err)
	}
	return nil
}

// CheckResidencyInvariant verifies that the passive-eviction order is
// consistent with the allocator: the LRU list and its position index
// mirror each other exactly, every LRU member is a non-persistent tensor
// that still owns device memory in an evictable or mid-swap-out state,
// and every non-persistent resident tensor is present in the order. The
// property and chaos tests call it at iteration boundaries; it returns
// nil in a healthy session.
func (s *Session) CheckResidencyInvariant() error {
	count := 0
	prev := int32(-1)
	for i := s.lruHead; i >= 0; i = s.lruNext[i] {
		if count >= s.lruLen+1 {
			return fmt.Errorf("exec: eviction order longer than its accounted length %d (cycle?)", s.lruLen)
		}
		if int(i) >= len(s.tlist) {
			return fmt.Errorf("exec: eviction order links index %d beyond the tensor table", i)
		}
		t := s.tlist[i]
		if !s.inLRU[i] {
			return fmt.Errorf("exec: %s linked into the eviction order but not marked a member", t.ID)
		}
		if s.lruPrev[i] != prev {
			return fmt.Errorf("exec: lru index out of sync for %s", t.ID)
		}
		if t.Persistent {
			return fmt.Errorf("exec: persistent tensor %s in the eviction order", t.ID)
		}
		if t.Status != tensor.In && t.Status != tensor.SwappingOut {
			return fmt.Errorf("exec: %s in eviction order with status %v", t.ID, t.Status)
		}
		if t.Alloc == nil {
			return fmt.Errorf("exec: %s in eviction order without device memory", t.ID)
		}
		prev = i
		count++
	}
	if prev != s.lruTail {
		return fmt.Errorf("exec: eviction order tail out of sync")
	}
	if count != s.lruLen {
		return fmt.Errorf("exec: lru list has %d entries but index has %d", count, s.lruLen)
	}
	flagged := 0
	for i := range s.inLRU {
		if s.inLRU[i] {
			flagged++
		}
	}
	if flagged != count {
		return fmt.Errorf("exec: lru membership flags (%d) disagree with the chain (%d)", flagged, count)
	}
	for _, n := range s.g.Nodes {
		for _, t := range n.Outputs {
			if t.Persistent || t.Status != tensor.In || t.Alloc == nil {
				continue
			}
			if !s.inLRU[t.Idx] {
				return fmt.Errorf("exec: resident tensor %s missing from the eviction order", t.ID)
			}
		}
	}
	return nil
}

// Residents returns the tensors currently holding device memory with
// their chunk sizes, largest first — a diagnostic for OOM analysis.
func (s *Session) Residents() map[string]int64 {
	out := make(map[string]int64)
	for _, n := range s.g.Nodes {
		for _, t := range n.Outputs {
			if t.Alloc != nil {
				out[t.ID] = t.Alloc.Size
			}
		}
	}
	return out
}
