package exec

import (
	"container/list"
	"fmt"

	"capuchin/internal/fault"
	"capuchin/internal/graph"
	"capuchin/internal/hw"
	"capuchin/internal/memory"
	"capuchin/internal/obs"
	"capuchin/internal/ops"
	"capuchin/internal/sim"
	"capuchin/internal/tensor"
)

// Mode selects the framework execution mode (§2.2).
type Mode int

// Execution modes.
const (
	// GraphMode executes a pre-built, optimized graph with precise
	// reference-count deallocation.
	GraphMode Mode = iota
	// EagerMode executes imperatively: a CPU dispatch stream serializes
	// ahead of kernels and the autograd tape retains every forward
	// activation until the iteration ends.
	EagerMode
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == EagerMode {
		return "eager"
	}
	return "graph"
}

// Config configures a Session.
type Config struct {
	Device hw.DeviceSpec
	// HostMemory bounds pinned CPU staging memory (default 256 GiB, the
	// paper testbed's DRAM).
	HostMemory int64
	Mode       Mode
	// Policy is the memory-management policy; nil means NullPolicy.
	Policy Policy
	// Allocator selects "bfc" (default) or "firstfit".
	Allocator string
	// CoupledSwap makes every node wait for all outstanding swap-outs
	// before issuing, reproducing vDNN's layer-wise synchronization
	// (§3.1, Fig. 1). Capuchin's decoupled mode leaves this false and
	// waits only on OOM (§5.3).
	CoupledSwap bool
	// CollectiveRecompute keeps intermediate recomputation targets
	// produced while replaying a lineage, memory permitting (§5.3).
	CollectiveRecompute bool
	// RecomputeHeadroom is the free-memory floor below which collective
	// recomputation stops retaining intermediates. Zero means 5% of
	// device memory.
	RecomputeHeadroom int64
	// RecordSpans enables stream span recording for timeline figures.
	RecordSpans bool
	// Faults is the deterministic fault-injection plan; the zero value
	// injects nothing and leaves every virtual-time outcome untouched.
	Faults fault.Plan
	// Comm describes pending collective traffic on this replica's host
	// link (set by the cluster scheduler). nil models an isolated device.
	// Transfers overlapping a comm window are degraded by the window's
	// slowdown regardless of CommAware — contention is physics.
	Comm CommModel
	// CommAware additionally lets the executor defer a swap transfer past
	// an all-reduce window when that finishes it earlier than contending
	// (the comm-aware scheduling rule). Off, windows only slow transfers.
	CommAware bool
	// Tracer receives structured observability events and policy decision
	// audit records. nil disables tracing entirely: no event is
	// constructed and the virtual-time outcome is identical.
	Tracer obs.Tracer
	// Metrics aggregates counters and virtual-time histograms across the
	// run; nil disables collection. Multiple sessions may share one
	// registry (it is concurrency-safe).
	Metrics *obs.Metrics
}

// Session executes iterations of one training graph.
type Session struct {
	cfg    Config
	g      *graph.Graph
	dev    hw.DeviceSpec
	policy Policy

	pool memory.Pool
	host *memory.HostArena

	compute *sim.Stream
	h2d     *sim.Stream
	d2h     *sim.Stream
	cpu     *sim.Stream // eager dispatch; nil in graph mode

	// pendingFrees holds device memory releases that complete in the
	// future (swap-outs in flight), keyed by tensor ID.
	pendingFrees sim.PendingSet
	// swapInDone maps tensor ID -> completion time of an in-flight
	// prefetch or on-demand swap-in.
	swapInDone map[string]sim.Time

	// refs counts remaining scheduled uses of each tensor this iteration.
	refs map[string]int
	// lastUse maps tensor ID -> schedule index of its final read this
	// iteration; updateBarrier is the index of the first in-place
	// parameter update. Together they bound which tensors may be degraded
	// from swapping to recomputation: a replay after a parameter update
	// would read modified weights and change the computed values.
	lastUse       map[string]int
	updateBarrier int
	// retained marks tensors pinned by the eager tape until iteration end.
	retained map[string]bool
	// lru orders resident tensors by last access for passive eviction
	// (the paper scans the tensor access list from the beginning, §5.2).
	lru    *list.List
	lruPos map[string]*list.Element

	// pinned marks tensors that the currently executing node reads or
	// writes; they must not be chosen as passive-eviction victims.
	pinned map[string]bool

	// actionAnchor is the virtual time at which policy-triggered
	// asynchronous actions start (the current access's effect point).
	actionAnchor sim.Time
	// penalty accumulates stall time subtracted from access timestamps to
	// reconstruct the infinite-memory timeline (§5.2).
	penalty sim.Time

	// inj answers fault-injection queries; disabled (but never nil) when
	// Config.Faults is the zero plan.
	inj *fault.Injector
	// defErr records an invariant violation raised inside a policy-driven
	// Env action, whose bool-returning signature cannot carry it; the
	// executor checks it at the next node boundary and fails the
	// iteration with the structured cause.
	defErr error

	// tr and met mirror Config.Tracer/Config.Metrics; both may be nil
	// (tracing and metrics off).
	tr  obs.Tracer
	met *obs.Metrics

	// gradIDs marks tensors consumed as gradients by ApplyGradient nodes;
	// gradEvents records their production times each iteration for the
	// cluster's all-reduce schedule. Pure bookkeeping: neither perturbs
	// any virtual-time outcome.
	gradIDs    map[string]bool
	gradEvents []GradEvent

	iter      int
	stats     IterStats
	trackCost sim.Time
	startTime sim.Time
	failed    bool
}

// NewSession prepares a session: builds the allocator, pre-allocates
// persistent tensors (weights live on device for the whole run, §2.1) and
// seeds their fingerprints.
func NewSession(g *graph.Graph, cfg Config) (*Session, error) {
	if cfg.Device.MemoryBytes <= 0 {
		return nil, fmt.Errorf("exec: device %q has no memory configured", cfg.Device.Name)
	}
	if cfg.HostMemory == 0 {
		cfg.HostMemory = 256 * hw.GiB
	}
	if cfg.Policy == nil {
		cfg.Policy = NullPolicy{}
	}
	if cfg.RecomputeHeadroom == 0 {
		cfg.RecomputeHeadroom = cfg.Device.MemoryBytes / 20
	}
	var pool memory.Pool
	switch cfg.Allocator {
	case "", "bfc":
		pool = memory.NewBFC(cfg.Device.MemoryBytes)
	case "firstfit":
		pool = memory.NewFirstFit(cfg.Device.MemoryBytes)
	default:
		return nil, fmt.Errorf("exec: unknown allocator %q", cfg.Allocator)
	}
	s := &Session{
		cfg:        cfg,
		g:          g,
		dev:        cfg.Device,
		policy:     cfg.Policy,
		pool:       pool,
		host:       memory.NewHostArena(cfg.HostMemory),
		compute:    sim.NewStream("compute"),
		h2d:        sim.NewStream("h2d"),
		d2h:        sim.NewStream("d2h"),
		swapInDone: make(map[string]sim.Time),
		lru:        list.New(),
		lruPos:     make(map[string]*list.Element),
		pinned:     make(map[string]bool),
		inj:        fault.NewInjector(cfg.Faults),
		tr:         cfg.Tracer,
		met:        cfg.Metrics,
		gradIDs:    make(map[string]bool),
	}
	for _, n := range g.Nodes {
		if _, isUpdate := n.Op.(ops.ApplyGradient); isUpdate && len(n.Inputs) > 1 {
			s.gradIDs[n.Inputs[1].ID] = true
		}
	}
	if cfg.Mode == EagerMode {
		s.cpu = sim.NewStream("cpu")
	}
	if cfg.RecordSpans {
		s.compute.SetRecording(true)
		s.h2d.SetRecording(true)
		s.d2h.SetRecording(true)
	}
	if s.policy.TracksAccesses() {
		s.trackCost = s.dev.TrackAccess
	}

	// Persistent tensors: allocate once, seed fingerprints.
	for _, n := range g.Nodes {
		for _, t := range n.Outputs {
			if !t.Persistent {
				continue
			}
			a, err := pool.Alloc(t.Bytes())
			if err != nil {
				return nil, fmt.Errorf("exec: model parameters do not fit on device: %w", err)
			}
			t.Alloc = a
			t.Fingerprint = tensor.HashSeed(t.ID)
			if err := t.TransitionTo(tensor.In); err != nil {
				return nil, err
			}
			if s.tr != nil {
				s.memEvent("alloc", "persistent", t.ID, t.Bytes(), 0)
			}
		}
	}
	return s, nil
}

// Graph returns the session's graph.
func (s *Session) Graph() *graph.Graph { return s.g }

// Pool exposes allocator statistics.
func (s *Session) Pool() memory.Pool { return s.pool }

// Host exposes pinned-memory statistics.
func (s *Session) Host() *memory.HostArena { return s.host }

// ResetPeak rescopes the device and host high-water marks to current
// usage. Sequential jobs reusing one session's allocator (a fleet device
// running job after job, or back-to-back Run calls profiling different
// regimes) call this between jobs so the next IterStats.PeakBytes reports
// that job's own peak rather than inheriting its predecessor's.
func (s *Session) ResetPeak() {
	s.pool.ResetPeak()
	s.host.ResetPeak()
}

// Streams returns the compute, H2D and D2H streams for span inspection.
func (s *Session) Streams() (compute, h2d, d2h *sim.Stream) {
	return s.compute, s.h2d, s.d2h
}

// now is the current virtual time on the compute stream.
func (s *Session) now() sim.Time { return s.compute.AvailableAt() }

// touchLRU moves t to the most-recently-used end of the eviction order.
func (s *Session) touchLRU(t *tensor.Tensor) {
	if e, ok := s.lruPos[t.ID]; ok {
		s.lru.MoveToBack(e)
		return
	}
	s.lruPos[t.ID] = s.lru.PushBack(t)
}

// dropLRU removes t from the eviction order.
func (s *Session) dropLRU(t *tensor.Tensor) {
	if e, ok := s.lruPos[t.ID]; ok {
		s.lru.Remove(e)
		delete(s.lruPos, t.ID)
	}
}

// The three helpers below are the only places the executor couples a
// residency transition to the eviction order. Every allocation that makes
// a tensor resident, every swap-in landing and every device-memory
// release goes through one of them, so the LRU cannot silently diverge
// from the allocator (CheckResidencyInvariant pins the coupling in the
// property tests).

// becomeResident marks a tensor that just received device memory as
// resident and enters it into the eviction order. ctx labels the
// invariant error on an illegal transition.
func (s *Session) becomeResident(t *tensor.Tensor, ctx string) error {
	if err := t.TransitionTo(tensor.In); err != nil {
		return invariant(ctx, t.ID, err)
	}
	s.touchLRU(t)
	return nil
}

// landSwapIn completes an in-flight or on-demand swap-in: the tensor
// becomes resident, its host copy is released and it re-enters the
// eviction order.
func (s *Session) landSwapIn(t *tensor.Tensor, ctx string) error {
	if err := t.TransitionTo(tensor.In); err != nil {
		return invariant(ctx, t.ID, err)
	}
	if s.host.Holds(t.ID) {
		if err := s.host.Release(t.ID); err != nil {
			return invariant(ctx, t.ID, err)
		}
	}
	s.touchLRU(t)
	return nil
}

// freeDevice releases a tensor's device memory, removes it from the
// eviction order and transitions it to next, in that order, so the LRU
// never holds a tensor without a live allocation.
func (s *Session) freeDevice(t *tensor.Tensor, next tensor.Status, ctx string) error {
	if err := s.pool.Free(t.Alloc); err != nil {
		return invariant(ctx, t.ID, err)
	}
	t.Alloc = nil
	s.dropLRU(t)
	if err := t.TransitionTo(next); err != nil {
		return invariant(ctx, t.ID, err)
	}
	return nil
}

// CheckResidencyInvariant verifies that the passive-eviction order is
// consistent with the allocator: the LRU list and its position index
// mirror each other exactly, every LRU member is a non-persistent tensor
// that still owns device memory in an evictable or mid-swap-out state,
// and every non-persistent resident tensor is present in the order. The
// property and chaos tests call it at iteration boundaries; it returns
// nil in a healthy session.
func (s *Session) CheckResidencyInvariant() error {
	if s.lru.Len() != len(s.lruPos) {
		return fmt.Errorf("exec: lru list has %d entries but index has %d", s.lru.Len(), len(s.lruPos))
	}
	seen := make(map[string]bool, s.lru.Len())
	for el := s.lru.Front(); el != nil; el = el.Next() {
		t, ok := el.Value.(*tensor.Tensor)
		if !ok || t == nil {
			return fmt.Errorf("exec: lru holds a non-tensor element")
		}
		if pos, ok := s.lruPos[t.ID]; !ok || pos != el {
			return fmt.Errorf("exec: lru index out of sync for %s", t.ID)
		}
		if seen[t.ID] {
			return fmt.Errorf("exec: %s appears twice in the eviction order", t.ID)
		}
		seen[t.ID] = true
		if t.Persistent {
			return fmt.Errorf("exec: persistent tensor %s in the eviction order", t.ID)
		}
		if t.Status != tensor.In && t.Status != tensor.SwappingOut {
			return fmt.Errorf("exec: %s in eviction order with status %v", t.ID, t.Status)
		}
		if t.Alloc == nil {
			return fmt.Errorf("exec: %s in eviction order without device memory", t.ID)
		}
	}
	for _, n := range s.g.Nodes {
		for _, t := range n.Outputs {
			if t.Persistent || t.Status != tensor.In || t.Alloc == nil {
				continue
			}
			if !seen[t.ID] {
				return fmt.Errorf("exec: resident tensor %s missing from the eviction order", t.ID)
			}
		}
	}
	return nil
}

// Residents returns the tensors currently holding device memory with
// their chunk sizes, largest first — a diagnostic for OOM analysis.
func (s *Session) Residents() map[string]int64 {
	out := make(map[string]int64)
	for _, n := range s.g.Nodes {
		for _, t := range n.Outputs {
			if t.Alloc != nil {
				out[t.ID] = t.Alloc.Size
			}
		}
	}
	return out
}
