package exec

import (
	"errors"
	"testing"

	"capuchin/internal/graph"
	"capuchin/internal/hw"
	"capuchin/internal/ops"
	"capuchin/internal/sim"
	"capuchin/internal/tensor"
)

// testCNN builds a small conv net whose activations are big enough to
// exercise memory pressure at modest capacities.
func testCNN(t *testing.T, opt graph.BuildOptions) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder("testcnn")
	x := b.Input("data", tensor.Shape{8, 3, 64, 64}, tensor.Float32)
	labels := b.Input("labels", tensor.Shape{8, 10}, tensor.Float32)
	h := x
	ch := int64(16)
	for i := 0; i < 4; i++ {
		w := b.Variable(named(t, "conv", i, "w"), tensor.Shape{ch * 2, h.Shape[1], 3, 3})
		h = b.Apply1(named(t, "conv", i, ""), ops.Conv2D{StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}, h, w)
		h = b.Apply1(named(t, "relu", i, ""), ops.ReLU{}, h)
		ch *= 2
	}
	h = b.Apply1("gap", ops.Pool{Kind: ops.AvgPoolKind}, h)
	flat := b.Apply1("flatten", ops.Reshape{To: tensor.Shape{8, h.Shape.Elems() / 8}}, h)
	w := b.Variable("fc_w", tensor.Shape{flat.Shape[1], 10})
	logits := b.Apply1("fc", ops.MatMul{}, flat, w)
	loss := b.Apply1("loss", ops.SoftmaxCrossEntropy{}, logits, labels)
	g, err := b.Build(loss, opt)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func named(t *testing.T, base string, i int, suffix string) string {
	t.Helper()
	name := base
	switch i {
	case 0:
		name += "0"
	case 1:
		name += "1"
	case 2:
		name += "2"
	case 3:
		name += "3"
	}
	if suffix != "" {
		name += "_" + suffix
	}
	return name
}

// device returns a small test device so memory pressure is reachable.
func device(mem int64) hw.DeviceSpec {
	d := hw.P100()
	d.MemoryBytes = mem
	return d
}

// lruPolicy is Capuchin's passive mode in isolation: evict
// least-recently-accessed residents on OOM, nothing proactive.
type lruPolicy struct{ NullPolicy }

func (lruPolicy) Name() string { return "lru-passive" }

func (lruPolicy) OnOOM(need int64, env *Env) ([]*tensor.Tensor, bool) {
	return env.LRUResidents(need), true
}

func (lruPolicy) TracksAccesses() bool { return true }

func TestRunIterationBaseline(t *testing.T) {
	g := testCNN(t, graph.GraphModeOptions())
	s, err := NewSession(g, Config{Device: device(2 * hw.GiB)})
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.RunIteration()
	if err != nil {
		t.Fatal(err)
	}
	if st.Duration <= 0 {
		t.Error("zero duration")
	}
	if st.Nodes == 0 || st.Accesses == 0 {
		t.Errorf("stats empty: %+v", st)
	}
	if st.LossFingerprint == 0 || st.ParamFingerprint == 0 {
		t.Error("fingerprints not captured")
	}
	if st.SwapOutCount != 0 || st.RecomputeCount != 0 || st.PassiveEvicts != 0 {
		t.Errorf("baseline run did memory management: %+v", st)
	}
	// All non-persistent memory must be released after the iteration
	// (pool usage counts rounded chunk sizes, so compare with the
	// post-setup snapshot rather than raw parameter bytes).
	s2, err := NewSession(testCNN(t, graph.GraphModeOptions()), Config{Device: device(2 * hw.GiB)})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := s.Pool().Used(), s2.Pool().Used(); got != want {
		t.Errorf("pool used after iteration = %d, want parameters only %d", got, want)
	}
	if s.Host().Used() != 0 {
		t.Error("host memory leaked")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (IterStats, IterStats) {
		g := testCNN(t, graph.GraphModeOptions())
		s, err := NewSession(g, Config{Device: device(2 * hw.GiB)})
		if err != nil {
			t.Fatal(err)
		}
		a, err := s.RunIteration()
		if err != nil {
			t.Fatal(err)
		}
		b, err := s.RunIteration()
		if err != nil {
			t.Fatal(err)
		}
		return a, b
	}
	a1, b1 := run()
	a2, b2 := run()
	if a1.Duration != a2.Duration || a1.LossFingerprint != a2.LossFingerprint {
		t.Error("first iterations differ across runs")
	}
	if b1.ParamFingerprint != b2.ParamFingerprint {
		t.Error("second iterations diverge")
	}
	// Parameters change between iterations (updates applied).
	if a1.ParamFingerprint == b1.ParamFingerprint {
		t.Error("parameter fingerprint did not change after an update step")
	}
	// Loss differs across iterations because weights changed.
	if a1.LossFingerprint == b1.LossFingerprint {
		t.Error("loss fingerprint identical across iterations despite weight update")
	}
}

func TestOOMWithoutPolicy(t *testing.T) {
	// Parameters do not fit in 512 KiB: session construction fails.
	g := testCNN(t, graph.GraphModeOptions())
	if _, err := NewSession(g, Config{Device: device(512 * hw.KiB)}); err == nil {
		t.Fatal("expected parameter allocation failure at 512 KiB")
	}
	// Give enough for parameters but not activations.
	s, err := NewSession(testCNN(t, graph.GraphModeOptions()), Config{Device: device(24 * hw.MiB)})
	if err != nil {
		t.Fatalf("parameters should fit in 24 MiB: %v", err)
	}
	_, err = s.RunIteration()
	if !errors.Is(err, ErrIterationOOM) {
		t.Fatalf("err = %v, want ErrIterationOOM", err)
	}
}

// oracle runs the baseline at ample memory and returns two iterations of
// fingerprints.
func oracle(t *testing.T, opt graph.BuildOptions) [2]IterStats {
	t.Helper()
	g := testCNN(t, opt)
	s, err := NewSession(g, Config{Device: device(4 * hw.GiB)})
	if err != nil {
		t.Fatal(err)
	}
	sts, err := s.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	return [2]IterStats{sts[0], sts[1]}
}

func TestPassiveModeMatchesOracle(t *testing.T) {
	want := oracle(t, graph.GraphModeOptions())
	g := testCNN(t, graph.GraphModeOptions())
	// Capacity chosen to force passive eviction but allow completion.
	s, err := NewSession(g, Config{Device: device(128 * hw.MiB), Policy: lruPolicy{}})
	if err != nil {
		t.Fatal(err)
	}
	sts, err := s.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	if sts[0].PassiveEvicts == 0 {
		t.Fatal("expected passive evictions under 128 MiB")
	}
	for i := range sts {
		if sts[i].LossFingerprint != want[i].LossFingerprint {
			t.Errorf("iter %d: loss fingerprint diverged under memory pressure", i)
		}
		if sts[i].ParamFingerprint != want[i].ParamFingerprint {
			t.Errorf("iter %d: param fingerprint diverged under memory pressure", i)
		}
	}
	// Memory pressure costs time.
	if sts[0].Duration <= want[0].Duration {
		t.Error("passive swapping should be slower than uncapped execution")
	}
	if s.Pool().Peak() > 128*hw.MiB {
		t.Errorf("peak %d exceeded capacity", s.Pool().Peak())
	}
}

// swapAllPolicy proactively evicts every multi-use forward tensor right
// after its second-to-last forward access and never prefetches, forcing
// on-demand swap-ins at back-access.
type swapAllPolicy struct{ NullPolicy }

func (swapAllPolicy) Name() string { return "swap-all" }

func (swapAllPolicy) OnAccess(acc Access, env *Env) {
	t := acc.Tensor
	if acc.Kind != Read || t.Persistent || t.Gradient {
		return
	}
	env.SwapOutAsync(t)
}

func (swapAllPolicy) OnOOM(need int64, env *Env) ([]*tensor.Tensor, bool) {
	return env.LRUResidents(need), true
}

func TestProactiveSwapMatchesOracle(t *testing.T) {
	want := oracle(t, graph.GraphModeOptions())
	g := testCNN(t, graph.GraphModeOptions())
	s, err := NewSession(g, Config{Device: device(112 * hw.MiB), Policy: swapAllPolicy{}})
	if err != nil {
		t.Fatal(err)
	}
	sts, err := s.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	if sts[0].SwapOutCount == 0 {
		t.Fatal("no proactive swap-outs recorded")
	}
	if sts[0].OnDemandInCount == 0 {
		t.Fatal("expected on-demand swap-ins at back-accesses")
	}
	for i := range sts {
		if sts[i].ParamFingerprint != want[i].ParamFingerprint {
			t.Errorf("iter %d: fingerprint diverged with swapping", i)
		}
	}
}

// recomputePolicy releases ReLU outputs after their forward use; backward
// accesses then trigger lineage replay.
type recomputePolicy struct{ NullPolicy }

func (recomputePolicy) Name() string { return "recompute-relu" }

func (recomputePolicy) OnAccess(acc Access, env *Env) {
	t := acc.Tensor
	if acc.Kind != Read || t.Persistent || t.Gradient {
		return
	}
	if t.OpName != "" && len(t.OpName) >= 4 && t.OpName[:4] == "relu" {
		env.ReleaseForRecompute(t)
	}
}

func (recomputePolicy) OnOOM(need int64, env *Env) ([]*tensor.Tensor, bool) {
	return env.LRUResidents(need), true
}

func TestRecomputeMatchesOracle(t *testing.T) {
	want := oracle(t, graph.GraphModeOptions())
	g := testCNN(t, graph.GraphModeOptions())
	s, err := NewSession(g, Config{Device: device(128 * hw.MiB), Policy: recomputePolicy{}})
	if err != nil {
		t.Fatal(err)
	}
	sts, err := s.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	if sts[0].RecomputeCount == 0 {
		t.Fatal("no recomputations recorded")
	}
	for i := range sts {
		if sts[i].ParamFingerprint != want[i].ParamFingerprint {
			t.Errorf("iter %d: fingerprint diverged with recomputation", i)
		}
	}
}

func TestCollectiveRecomputeReducesReplays(t *testing.T) {
	// A chain of recompute-released ReLUs: with collective recomputation
	// the first replay regenerates later targets too.
	run := func(collective bool) IterStats {
		g := testCNN(t, graph.GraphModeOptions())
		s, err := NewSession(g, Config{
			Device:              device(256 * hw.MiB),
			Policy:              recomputePolicy{},
			CollectiveRecompute: collective,
		})
		if err != nil {
			t.Fatal(err)
		}
		st, err := s.RunIteration()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	with := run(true)
	without := run(false)
	if with.RecomputeCount > without.RecomputeCount {
		t.Errorf("collective recompute used more replays (%d) than without (%d)",
			with.RecomputeCount, without.RecomputeCount)
	}
}

func TestEagerModeCosts(t *testing.T) {
	gg := testCNN(t, graph.GraphModeOptions())
	ge := testCNN(t, graph.EagerModeOptions())
	sg, err := NewSession(gg, Config{Device: device(2 * hw.GiB), Mode: GraphMode})
	if err != nil {
		t.Fatal(err)
	}
	se, err := NewSession(ge, Config{Device: device(2 * hw.GiB), Mode: EagerMode})
	if err != nil {
		t.Fatal(err)
	}
	stg, err := sg.RunIteration()
	if err != nil {
		t.Fatal(err)
	}
	ste, err := se.RunIteration()
	if err != nil {
		t.Fatal(err)
	}
	if ste.Duration <= stg.Duration {
		t.Errorf("eager (%v) should be slower than graph (%v)", ste.Duration, stg.Duration)
	}
	// Tape retention holds forward activations: higher peak memory.
	if se.Pool().Peak() <= sg.Pool().Peak() {
		t.Errorf("eager peak %d should exceed graph peak %d (tape retention)",
			se.Pool().Peak(), sg.Pool().Peak())
	}
}

func TestCoupledSwapSlower(t *testing.T) {
	run := func(coupled bool) IterStats {
		g := testCNN(t, graph.GraphModeOptions())
		s, err := NewSession(g, Config{
			Device:      device(112 * hw.MiB),
			Policy:      swapAllPolicy{},
			CoupledSwap: coupled,
		})
		if err != nil {
			t.Fatal(err)
		}
		st, err := s.RunIteration()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	coupled := run(true)
	decoupled := run(false)
	if coupled.Duration < decoupled.Duration {
		t.Errorf("coupled swap (%v) should not beat decoupled (%v)",
			coupled.Duration, decoupled.Duration)
	}
}

func TestTrackingOverheadCharged(t *testing.T) {
	base := func(p Policy) IterStats {
		g := testCNN(t, graph.GraphModeOptions())
		s, err := NewSession(g, Config{Device: device(2 * hw.GiB), Policy: p})
		if err != nil {
			t.Fatal(err)
		}
		st, err := s.RunIteration()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	off := base(NullPolicy{})
	on := base(lruPolicy{}) // tracks accesses but no pressure at 2 GiB
	if on.Duration <= off.Duration {
		t.Error("tracking overhead not charged")
	}
	overhead := float64(on.Duration-off.Duration) / float64(off.Duration)
	if overhead > 0.05 {
		t.Errorf("tracking overhead %.1f%% is implausibly high (paper: <1%%)", overhead*100)
	}
}

func TestConfigValidation(t *testing.T) {
	g := testCNN(t, graph.GraphModeOptions())
	if _, err := NewSession(g, Config{Device: hw.DeviceSpec{}}); err == nil {
		t.Error("zero device accepted")
	}
	if _, err := NewSession(g, Config{Device: device(hw.GiB), Allocator: "magic"}); err == nil {
		t.Error("unknown allocator accepted")
	}
	s, err := NewSession(g, Config{Device: device(hw.GiB), Allocator: "firstfit"})
	if err != nil {
		t.Fatal(err)
	}
	if s.Pool().Name() != "firstfit" {
		t.Error("allocator selection ignored")
	}
}

func TestSwapInAsyncPrefetchPath(t *testing.T) {
	// Drive Env.SwapOutAsync + SwapInAsync manually through a scripted
	// policy: evict conv outputs after forward, prefetch at a fixed later
	// access, and verify PrefetchCount and correctness.
	want := oracle(t, graph.GraphModeOptions())
	p := &scriptedPrefetch{}
	g := testCNN(t, graph.GraphModeOptions())
	s, err := NewSession(g, Config{Device: device(96 * hw.MiB), Policy: p})
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.RunIteration()
	if err != nil {
		t.Fatal(err)
	}
	if st.SwapOutCount == 0 {
		t.Fatal("scripted policy did not swap out")
	}
	if st.PrefetchCount == 0 {
		t.Fatal("scripted policy did not prefetch")
	}
	if st.ParamFingerprint != want[0].ParamFingerprint {
		t.Error("fingerprint diverged with prefetching")
	}
}

// scriptedPrefetch swaps out relu outputs at their forward read and
// prefetches each swapped tensor when the loss gradient seed appears.
type scriptedPrefetch struct {
	NullPolicy
	swapped []*tensor.Tensor
}

func (p *scriptedPrefetch) Name() string { return "scripted-prefetch" }

func (p *scriptedPrefetch) OnAccess(acc Access, env *Env) {
	t := acc.Tensor
	if acc.Kind == Read && !t.Persistent && !t.Gradient {
		if env.SwapOutAsync(t) {
			p.swapped = append(p.swapped, t)
		}
		return
	}
	if acc.Kind == Produce && acc.NodeID == "grad/seed" {
		for _, sw := range p.swapped {
			env.SwapInAsync(sw)
		}
		p.swapped = nil
	}
}

func (p *scriptedPrefetch) OnOOM(need int64, env *Env) ([]*tensor.Tensor, bool) {
	return env.LRUResidents(need), true
}

func (p *scriptedPrefetch) EndIteration(int, *Env) { p.swapped = nil }

func TestThroughputHelper(t *testing.T) {
	st := IterStats{Duration: sim.Second}
	if got := st.Throughput(100); got != 100 {
		t.Errorf("Throughput = %g, want 100", got)
	}
	if got := (IterStats{}).Throughput(100); got != 0 {
		t.Error("zero-duration throughput should be 0")
	}
	if (IterStats{Iter: 1, Duration: sim.Second}).String() == "" {
		t.Error("empty String()")
	}
}

func TestHostMemoryLimit(t *testing.T) {
	// A tiny host arena forces swap-outs to fail; passive eviction then
	// cannot proceed and the run must fail with OOM rather than corrupt
	// state.
	g := testCNN(t, graph.GraphModeOptions())
	s, err := NewSession(g, Config{
		Device:     device(48 * hw.MiB),
		HostMemory: 1 * hw.MiB,
		Policy:     lruPolicy{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunIteration(); !errors.Is(err, ErrIterationOOM) {
		t.Fatalf("err = %v, want ErrIterationOOM when host memory is exhausted", err)
	}
}
