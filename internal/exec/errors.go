package exec

import (
	"errors"
	"fmt"

	"capuchin/internal/fault"
	"capuchin/internal/sim"
)

// ErrIterationOOM wraps allocation failures that no policy action could
// resolve; the max-batch searches treat it as "this batch does not fit".
// The full cause chain is preserved: a typical failure matches both
// ErrIterationOOM and memory.ErrOOM.
var ErrIterationOOM = errors.New("iteration failed with out-of-memory")

// ErrInvariant is the sentinel wrapped by InvariantError: executor state
// (residency transitions, host-arena bookkeeping, allocator handles) was
// violated. Unlike OOM or transfer faults this is never recoverable — it
// indicates a bug, surfaced as a structured failed Result instead of a
// panic so concurrent sweeps keep running and report the cause chain.
var ErrInvariant = errors.New("executor invariant violated")

// InvariantError reports a violated executor invariant with tensor and
// operation diagnostics.
type InvariantError struct {
	// Op names the executor operation that tripped, e.g. "release",
	// "finish-swapout", "swapout-async".
	Op string
	// TensorID identifies the tensor involved, when known.
	TensorID string
	// Err is the underlying cause (a state-machine rejection, a
	// memory.InvariantError, a host-arena error).
	Err error
}

func (e *InvariantError) Error() string {
	if e.TensorID == "" {
		return fmt.Sprintf("exec: %s: %v", e.Op, e.Err)
	}
	return fmt.Sprintf("exec: %s of tensor %s: %v", e.Op, e.TensorID, e.Err)
}

// Unwrap exposes both the ErrInvariant sentinel and the underlying cause,
// so errors.Is works against either.
func (e *InvariantError) Unwrap() []error {
	if e.Err == nil {
		return []error{ErrInvariant}
	}
	return []error{ErrInvariant, e.Err}
}

// invariant wraps an underlying error as an InvariantError.
func invariant(op, tensorID string, err error) error {
	return &InvariantError{Op: op, TensorID: tensorID, Err: err}
}

// ErrTransferFailed is the sentinel wrapped by TransferError: a PCIe
// transfer kept failing after its full retry budget.
var ErrTransferFailed = errors.New("transfer failed after retries")

// TransferError reports a logical transfer that exhausted its retries.
type TransferError struct {
	// Dir is the failed direction.
	Dir fault.Direction
	// TensorID is the transferred tensor.
	TensorID string
	// Bytes is the transfer size.
	Bytes int64
	// Attempts is the number of DMA attempts made (initial + retries).
	Attempts int
	// GaveUpAt is the virtual time the last attempt aborted.
	GaveUpAt sim.Time
}

func (e *TransferError) Error() string {
	return fmt.Sprintf("exec: %s transfer of %s (%d bytes) failed after %d attempts at %v",
		e.Dir, e.TensorID, e.Bytes, e.Attempts, e.GaveUpAt)
}

// Unwrap exposes the ErrTransferFailed sentinel and fault.ErrInjected:
// exhausted retries only occur under injection, and recovery code treats
// the whole chain as injected-fault fallout.
func (e *TransferError) Unwrap() []error {
	return []error{ErrTransferFailed, fault.ErrInjected}
}
