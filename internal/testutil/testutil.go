// Package testutil provides small training graphs and device helpers
// shared by tests across the simulator's packages.
package testutil

import (
	"fmt"
	"testing"

	"capuchin/internal/exec"
	"capuchin/internal/graph"
	"capuchin/internal/hw"
	"capuchin/internal/ops"
	"capuchin/internal/tensor"
)

// SmallCNN builds a constant-width convolution chain: depth conv+relu
// pairs of width channels on batch 8 64x64 inputs, global pool, dense
// classifier. Constant width keeps per-op working sets small relative to
// the total activation footprint, leaving policies room to act.
func SmallCNN(tb testing.TB, depth int, width int64, opt graph.BuildOptions) *graph.Graph {
	tb.Helper()
	b := graph.NewBuilder("smallcnn")
	x := b.Input("data", tensor.Shape{8, 3, 64, 64}, tensor.Float32)
	labels := b.Input("labels", tensor.Shape{8, 10}, tensor.Float32)
	h := x
	for i := 0; i < depth; i++ {
		w := b.Variable(fmt.Sprintf("conv%d_w", i), tensor.Shape{width, h.Shape[1], 3, 3})
		h = b.Apply1(fmt.Sprintf("conv%d", i), ops.Conv2D{StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}, h, w)
		h = b.Apply1(fmt.Sprintf("relu%d", i), ops.ReLU{}, h)
	}
	h = b.Apply1("gap", ops.Pool{Kind: ops.AvgPoolKind}, h)
	flat := b.Apply1("flatten", ops.Reshape{To: tensor.Shape{8, h.Shape.Elems() / 8}}, h)
	w := b.Variable("fc_w", tensor.Shape{flat.Shape[1], 10})
	logits := b.Apply1("fc", ops.MatMul{}, flat, w)
	loss := b.Apply1("loss", ops.SoftmaxCrossEntropy{}, logits, labels)
	g, err := b.Build(loss, opt)
	if err != nil {
		tb.Fatal(err)
	}
	return g
}

// Device returns a P100 with the given memory capacity.
func Device(mem int64) hw.DeviceSpec {
	d := hw.P100()
	d.MemoryBytes = mem
	return d
}

// Oracle runs the uncapped baseline for n iterations and returns stats.
func Oracle(tb testing.TB, build func() *graph.Graph, n int) []exec.IterStats {
	tb.Helper()
	s, err := exec.NewSession(build(), exec.Config{Device: Device(8 * hw.GiB)})
	if err != nil {
		tb.Fatal(err)
	}
	sts, err := s.Run(n)
	if err != nil {
		tb.Fatal(err)
	}
	return sts
}
