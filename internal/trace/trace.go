// Package trace records tensor-access and stream-span events from
// simulation runs and exports them as TSV, powering the paper's timeline
// figures (the vDNN swap timeline of Fig. 1 and the cross-iteration access
// regularity of Fig. 3).
package trace

import (
	"fmt"
	"io"

	"capuchin/internal/exec"
	"capuchin/internal/obs"
	"capuchin/internal/sim"
	"capuchin/internal/tensor"
)

// Event is one recorded tensor access.
type Event struct {
	Iter     int
	TensorID string
	Count    int
	At       sim.Time
	Kind     exec.AccessKind
	NodeID   string
}

// Recorder is an exec.Policy decorator that records the access stream
// while delegating every decision to the wrapped policy.
type Recorder struct {
	// Inner is the decorated policy; nil means exec.NullPolicy.
	Inner exec.Policy
	// Filter selects which accesses to record; nil records everything.
	Filter func(acc exec.Access) bool
	// Tracer, when set, additionally receives each recorded access as an
	// obs instant (Cat "access") so access markers land on the same
	// timeline as the executor's kernel and transfer spans. The Filter
	// gates forwarding too — record-everything tracers would drown the
	// Chrome export in per-access instants.
	Tracer obs.Tracer

	events []Event
}

var _ exec.Policy = (*Recorder)(nil)

// NewRecorder wraps a policy with access recording.
func NewRecorder(inner exec.Policy, filter func(exec.Access) bool) *Recorder {
	if inner == nil {
		inner = exec.NullPolicy{}
	}
	return &Recorder{Inner: inner, Filter: filter}
}

// Name implements exec.Policy.
func (r *Recorder) Name() string { return r.Inner.Name() + "+trace" }

// BeginIteration implements exec.Policy.
func (r *Recorder) BeginIteration(iter int, env *exec.Env) { r.Inner.BeginIteration(iter, env) }

// OnAccess implements exec.Policy.
func (r *Recorder) OnAccess(acc exec.Access, env *exec.Env) {
	if r.Filter == nil || r.Filter(acc) {
		r.events = append(r.events, Event{
			Iter:     acc.Iter,
			TensorID: acc.Tensor.ID,
			Count:    acc.Count,
			At:       acc.At,
			Kind:     acc.Kind,
			NodeID:   acc.NodeID,
		})
		if r.Tracer != nil {
			r.Tracer.Emit(obs.Event{
				Kind:   obs.KindInstant,
				Cat:    "access",
				Name:   acc.Kind.String() + " " + acc.Tensor.ID,
				Lane:   "cpu",
				Start:  acc.Raw,
				Iter:   acc.Iter,
				Tensor: acc.Tensor.ID,
				Node:   acc.NodeID,
				Bytes:  acc.Tensor.Bytes(),
				Detail: fmt.Sprintf("access #%d", acc.Count),
			})
		}
	}
	r.Inner.OnAccess(acc, env)
}

// OnOOM implements exec.Policy.
func (r *Recorder) OnOOM(need int64, env *exec.Env) ([]*tensor.Tensor, bool) {
	return r.Inner.OnOOM(need, env)
}

// EndIteration implements exec.Policy.
func (r *Recorder) EndIteration(iter int, env *exec.Env) { r.Inner.EndIteration(iter, env) }

// TracksAccesses implements exec.Policy.
func (r *Recorder) TracksAccesses() bool { return r.Inner.TracksAccesses() }

// Events returns the recorded events.
func (r *Recorder) Events() []Event { return r.events }

// Reset clears the recording.
func (r *Recorder) Reset() { r.events = nil }

// WriteTSV writes the recorded events as tab-separated values.
func (r *Recorder) WriteTSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "iter\ttensor\tcount\ttime_us\tkind\tnode"); err != nil {
		return err
	}
	for _, e := range r.events {
		if _, err := fmt.Fprintf(w, "%d\t%s\t%d\t%.2f\t%s\t%s\n",
			e.Iter, e.TensorID, e.Count, e.At.Microseconds(), e.Kind, e.NodeID); err != nil {
			return err
		}
	}
	return nil
}

// WriteSpansTSV writes stream spans (label, start, end) as TSV: the raw
// material of swap-overlap timelines like the paper's Figure 1.
func WriteSpansTSV(w io.Writer, stream string, spans []sim.Span) error {
	if _, err := fmt.Fprintln(w, "stream\tlabel\tstart_us\tend_us\tdur_us"); err != nil {
		return err
	}
	for _, sp := range spans {
		if _, err := fmt.Fprintf(w, "%s\t%s\t%.2f\t%.2f\t%.2f\n",
			stream, sp.Label, sp.Start.Microseconds(), sp.End.Microseconds(), sp.Duration().Microseconds()); err != nil {
			return err
		}
	}
	return nil
}
