package trace

import (
	"strings"
	"testing"

	"capuchin/internal/exec"
	"capuchin/internal/graph"
	"capuchin/internal/hw"
	"capuchin/internal/sim"
	"capuchin/internal/testutil"
)

func TestRecorderCapturesAccesses(t *testing.T) {
	g := testutil.SmallCNN(t, 2, 16, graph.GraphModeOptions())
	rec := NewRecorder(nil, nil)
	s, err := exec.NewSession(g, exec.Config{Device: testutil.Device(hw.GiB), Policy: rec})
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.RunIteration()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Events()) != st.Accesses {
		t.Errorf("recorded %d events, executor reported %d accesses", len(rec.Events()), st.Accesses)
	}
	if rec.Name() != "tf-ori+trace" {
		t.Errorf("Name = %q", rec.Name())
	}
	var sb strings.Builder
	if err := rec.WriteTSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "iter\ttensor") {
		t.Error("missing TSV header")
	}
	if !strings.Contains(out, "conv0:0") {
		t.Error("conv0 output access missing from trace")
	}
	rec.Reset()
	if len(rec.Events()) != 0 {
		t.Error("Reset did not clear events")
	}
}

func TestRecorderFilter(t *testing.T) {
	g := testutil.SmallCNN(t, 2, 16, graph.GraphModeOptions())
	rec := NewRecorder(nil, func(acc exec.Access) bool {
		return acc.Tensor.ID == "relu0:0"
	})
	s, err := exec.NewSession(g, exec.Config{Device: testutil.Device(hw.GiB), Policy: rec})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunIteration(); err != nil {
		t.Fatal(err)
	}
	if len(rec.Events()) == 0 {
		t.Fatal("filter recorded nothing")
	}
	for _, e := range rec.Events() {
		if e.TensorID != "relu0:0" {
			t.Errorf("filter leaked %s", e.TensorID)
		}
	}
}

func TestWriteSpansTSV(t *testing.T) {
	spans := []sim.Span{
		{Label: "conv0", Start: 0, End: 10 * sim.Microsecond},
		{Label: "swapout x", Start: 10 * sim.Microsecond, End: 30 * sim.Microsecond},
	}
	var sb strings.Builder
	if err := WriteSpansTSV(&sb, "d2h", spans); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "swapout x") || !strings.Contains(out, "d2h") {
		t.Errorf("spans TSV incomplete:\n%s", out)
	}
	if got := strings.Count(out, "\n"); got != 3 {
		t.Errorf("TSV has %d lines, want 3", got)
	}
}
