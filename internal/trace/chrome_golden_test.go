package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"capuchin/internal/core"
	"capuchin/internal/exec"
	"capuchin/internal/graph"
	"capuchin/internal/hw"
	"capuchin/internal/obs"
	"capuchin/internal/ops"
	"capuchin/internal/tensor"
	"capuchin/internal/testutil"
)

// update regenerates the golden Chrome trace instead of comparing:
//
//	go test ./internal/trace -run ChromeGolden -update
var update = flag.Bool("update", false, "rewrite the golden Chrome trace")

// residualCNN builds a small ResNet-ish graph: a stem convolution and two
// residual blocks (conv-relu-conv plus identity shortcut) ahead of the
// classifier. The skip connections give tensors long liveness gaps, so a
// memory-capped run produces genuine swap and recompute traffic.
func residualCNN(tb testing.TB) *graph.Graph {
	tb.Helper()
	b := graph.NewBuilder("residualcnn")
	x := b.Input("data", tensor.Shape{8, 3, 64, 64}, tensor.Float32)
	labels := b.Input("labels", tensor.Shape{8, 10}, tensor.Float32)
	const width = 32
	stemW := b.Variable("stem_w", tensor.Shape{width, 3, 3, 3})
	h := b.Apply1("stem", ops.Conv2D{StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}, x, stemW)
	for i := 0; i < 2; i++ {
		short := h
		w1 := b.Variable(fmt.Sprintf("res%d_w1", i), tensor.Shape{width, width, 3, 3})
		h = b.Apply1(fmt.Sprintf("res%d_conv1", i), ops.Conv2D{StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}, h, w1)
		h = b.Apply1(fmt.Sprintf("res%d_relu1", i), ops.ReLU{}, h)
		w2 := b.Variable(fmt.Sprintf("res%d_w2", i), tensor.Shape{width, width, 3, 3})
		h = b.Apply1(fmt.Sprintf("res%d_conv2", i), ops.Conv2D{StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}, h, w2)
		h = b.Apply1(fmt.Sprintf("res%d_add", i), ops.Add{}, h, short)
		h = b.Apply1(fmt.Sprintf("res%d_relu2", i), ops.ReLU{}, h)
	}
	h = b.Apply1("gap", ops.Pool{Kind: ops.AvgPoolKind}, h)
	flat := b.Apply1("flatten", ops.Reshape{To: tensor.Shape{8, h.Shape.Elems() / 8}}, h)
	fcW := b.Variable("fc_w", tensor.Shape{flat.Shape[1], 10})
	logits := b.Apply1("fc", ops.MatMul{}, flat, fcW)
	loss := b.Apply1("loss", ops.SoftmaxCrossEntropy{}, logits, labels)
	g, err := b.Build(loss, graph.GraphModeOptions())
	if err != nil {
		tb.Fatal(err)
	}
	return g
}

// runObserved executes the residual CNN under memory pressure with the full
// observability stack attached: Capuchin as the policy (decision audit),
// a Recorder forwarding one tensor's accesses, a Collector, and metrics.
func runObserved(tb testing.TB) ([]exec.IterStats, *obs.Collector, *obs.Metrics, *Recorder) {
	tb.Helper()
	col := obs.NewCollector()
	met := obs.NewMetrics()
	rec := NewRecorder(core.New(core.Options{}), func(acc exec.Access) bool {
		return acc.Tensor.ID == "res0_relu1:0"
	})
	rec.Tracer = col
	s, err := exec.NewSession(residualCNN(tb), exec.Config{
		Device:  testutil.Device(24 * hw.MiB),
		Policy:  rec,
		Tracer:  col,
		Metrics: met,
	})
	if err != nil {
		tb.Fatal(err)
	}
	sts, err := s.Run(2)
	if err != nil {
		tb.Fatal(err)
	}
	return sts, col, met, rec
}

// chromeFile mirrors the export's top-level JSON shape.
type chromeFile struct {
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	TraceEvents     []json.RawMessage `json:"traceEvents"`
}

type chromeEvent struct {
	Name  string         `json:"name"`
	Ph    string         `json:"ph"`
	TS    float64        `json:"ts"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args"`
	Scope string         `json:"s"`
}

// TestChromeGolden pins the Chrome trace export of a small ResNet-ish run
// byte-for-byte, and validates the structural invariants Perfetto relies
// on: parseable JSON, monotonically non-decreasing timestamps, and matched
// B/E span pairs on every lane.
func TestChromeGolden(t *testing.T) {
	_, col, _, _ := runObserved(t)
	var buf bytes.Buffer
	if err := obs.WriteChromeTrace(&buf, col.Events()); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join("testdata", "chrome_trace.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	} else {
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing golden (regenerate with go test ./internal/trace -run ChromeGolden -update): %v", err)
		}
		if !bytes.Equal(want, buf.Bytes()) {
			t.Errorf("chrome trace drifted from golden (regenerate with -update if the change is intended); got %d bytes, want %d", buf.Len(), len(want))
		}
	}

	var f chromeFile
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if f.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", f.DisplayTimeUnit)
	}

	lanes := make(map[string]bool)
	depth := make(map[int]int)
	counts := make(map[string]int)
	lastTS := -1.0
	for _, raw := range f.TraceEvents {
		var ev chromeEvent
		if err := json.Unmarshal(raw, &ev); err != nil {
			t.Fatal(err)
		}
		counts[ev.Ph]++
		switch ev.Ph {
		case "M":
			if ev.Name == "thread_name" {
				lanes[ev.Args["name"].(string)] = true
			}
			continue
		case "B":
			depth[ev.TID]++
		case "E":
			depth[ev.TID]--
			if depth[ev.TID] < 0 {
				t.Fatalf("unmatched E on tid %d at ts %.2f", ev.TID, ev.TS)
			}
		case "i":
			if ev.Scope != "t" {
				t.Errorf("instant %q missing thread scope", ev.Name)
			}
		}
		if ev.TS < lastTS {
			t.Fatalf("timestamps regress: %.3f after %.3f (%s %q)", ev.TS, lastTS, ev.Ph, ev.Name)
		}
		lastTS = ev.TS
	}
	for tid, d := range depth {
		if d != 0 {
			t.Errorf("tid %d ends with %d unclosed spans", tid, d)
		}
	}
	if counts["B"] == 0 || counts["B"] != counts["E"] {
		t.Errorf("span pairs unbalanced: %d B vs %d E", counts["B"], counts["E"])
	}
	if counts["C"] == 0 {
		t.Error("no memory counter records")
	}
	if counts["i"] == 0 {
		t.Error("no instant records")
	}
	for _, lane := range []string{"compute", "h2d", "d2h", "cpu"} {
		if !lanes[lane] {
			t.Errorf("lane %q missing from thread metadata", lane)
		}
	}
}

// TestProfileSmoke drives every exporter off one observed run: the Chrome
// trace, the memory profile report, the decision audit, and the metrics
// text dump. It is the test target behind make profile-smoke.
func TestProfileSmoke(t *testing.T) {
	sts, col, met, rec := runObserved(t)

	var chrome bytes.Buffer
	if err := obs.WriteChromeTrace(&chrome, col.Events()); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(chrome.Bytes()) {
		t.Error("chrome trace is not valid JSON")
	}

	prof := obs.BuildMemProfile(col.Events())
	if prof.PeakBytes <= 0 {
		t.Fatal("profile found no peak")
	}
	peak := sts[0].PeakBytes
	for _, st := range sts {
		if st.PeakBytes > peak {
			peak = st.PeakBytes
		}
	}
	if prof.PeakBytes != peak {
		t.Errorf("profile peak %d != allocator peak %d", prof.PeakBytes, peak)
	}
	var report bytes.Buffer
	if err := prof.WriteReport(&report); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report.String(), "device peak") {
		t.Errorf("memory report incomplete:\n%s", report.String())
	}

	subjects := obs.ExplainTensors(col.Decisions())
	if len(subjects) == 0 {
		t.Fatal("no decision subjects recorded under memory pressure")
	}
	var explain bytes.Buffer
	if err := obs.WriteExplain(&explain, subjects[0], col.Decisions(), col.Events()); err != nil {
		t.Fatal(err)
	}
	if explain.Len() == 0 {
		t.Errorf("explain output empty for %s", subjects[0])
	}

	var metrics bytes.Buffer
	if err := met.WriteText(&metrics); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(metrics.String(), "kernel") {
		t.Errorf("metrics dump missing kernel histogram:\n%s", metrics.String())
	}

	// The Recorder forwarded exactly its filtered accesses as instants.
	var accessInstants int
	for _, ev := range col.Events() {
		if ev.Cat == "access" {
			accessInstants++
			if ev.Tensor != "res0_relu1:0" {
				t.Errorf("access instant leaked past the filter: %+v", ev)
			}
		}
	}
	if accessInstants == 0 || accessInstants != len(rec.Events()) {
		t.Errorf("forwarded %d access instants, recorder holds %d events", accessInstants, len(rec.Events()))
	}
}
