package fault

import (
	"math/rand"
	"testing"

	"capuchin/internal/sim"
)

// randomValidPlan draws one Plan that passes Validate, exercising every
// field: zero and non-zero seeds, nanosecond-granular backoffs, degrade
// geometry with and without a factor, and full-precision rates.
func randomValidPlan(rng *rand.Rand) Plan {
	var p Plan
	if rng.Intn(2) == 0 {
		p.Seed = rng.Uint64()
	}
	if rng.Intn(2) == 0 {
		p.TransferFailRate = rng.Float64()
	}
	if rng.Intn(2) == 0 {
		p.MaxTransferRetries = rng.Intn(16)
	}
	if rng.Intn(2) == 0 {
		// Nanosecond granularity up to ~1 s: the precision-hostile range
		// for a field printed in microseconds.
		p.RetryBackoff = sim.Time(rng.Int63n(int64(sim.Second)))
	}
	switch rng.Intn(3) {
	case 0:
		// Full degradation geometry.
		p.DegradeFactor = 1 + 7*rng.Float64()
		p.DegradePeriod = sim.Time(1 + rng.Int63n(int64(60*sim.Second)))
		p.DegradeDuration = sim.Time(rng.Int63n(int64(p.DegradePeriod) + 1))
	case 1:
		// Factor without windows (disabled, but a valid plan value).
		p.DegradeFactor = 1 + 7*rng.Float64()
	}
	if rng.Intn(2) == 0 {
		p.KernelSpikeRate = rng.Float64()
	}
	if rng.Intn(2) == 0 {
		p.KernelSpikeFactor = 1 + 9*rng.Float64()
	}
	if rng.Intn(2) == 0 {
		p.AllocFailRate = rng.Float64()
	}
	if rng.Intn(2) == 0 {
		p.HostFailRate = rng.Float64()
	}
	return p
}

// TestPlanStringRoundTrip is the property test of the String↔ParsePlan
// pair: every valid plan's canonical rendering re-parses to an equal plan,
// field for field. This pins the fields the old summary format dropped
// (retries, backoff, kernel-factor, the exact window geometry) and the
// nanosecond rounding in ParsePlan.
func TestPlanStringRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		p := randomValidPlan(rng)
		if err := p.Validate(); err != nil {
			t.Fatalf("generator produced invalid plan %+v: %v", p, err)
		}
		s := p.String()
		got, err := ParsePlan(s)
		if err != nil {
			t.Fatalf("ParsePlan(%q) of plan %+v: %v", s, p, err)
		}
		if got != p {
			t.Fatalf("round trip dropped fields:\n spec %q\n want %+v\n got  %+v", s, p, got)
		}
	}
}

// TestPlanStringRoundTripCorners pins the hand-picked corner plans the
// random generator may miss.
func TestPlanStringRoundTripCorners(t *testing.T) {
	plans := []Plan{
		{},
		{Seed: 42},
		DefaultPlan(0),
		DefaultPlan(1 << 63),
		{MaxTransferRetries: 7},
		{RetryBackoff: 1}, // a single nanosecond
		{RetryBackoff: sim.MaxBackoff},
		{DegradeFactor: 4}, // factor with zero geometry: must not resurrect defaults
		{DegradePeriod: 3 * sim.Millisecond},
		{DegradeDuration: 5 * sim.Microsecond},
		{KernelSpikeFactor: 2.5}, // factor without a rate
		{TransferFailRate: 0.123456789123456789},
	}
	for _, p := range plans {
		s := p.String()
		got, err := ParsePlan(s)
		if err != nil {
			t.Fatalf("ParsePlan(%q): %v", s, err)
		}
		if got != p {
			t.Errorf("round trip of %+v via %q = %+v", p, s, got)
		}
	}
}

func TestValidateRejectsNegatives(t *testing.T) {
	for _, p := range []Plan{
		{RetryBackoff: -1},
		{DegradePeriod: -1},
		{DegradeDuration: -1},
		{MaxTransferRetries: -1},
	} {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", p)
		}
	}
}
