// Package fault provides seeded, deterministic fault injection for the
// simulator. A Plan describes which degraded conditions exist — transient
// PCIe transfer failures, bandwidth-degradation windows, kernel latency
// spikes, spurious device-allocation failures and pinned-host pressure —
// and an Injector answers the executor's per-event queries reproducibly:
// the same Plan always yields the same fault schedule, independent of how
// queries for unrelated subjects interleave.
//
// Determinism matters because the executor's recovery paths (retry with
// backoff, swap-to-recompute fallback, passive OOM recovery) must be
// testable: a chaos run is only debuggable if its seed replays it exactly.
// Each decision is therefore drawn from a counter-keyed hash of
// (seed, site, subject) rather than from a shared sequential RNG, so adding
// a query at one site never shifts the draws of another.
package fault

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"

	"capuchin/internal/sim"
)

// ErrInjected marks failures that originate from the injector rather than
// from a genuine resource shortage. Recovery code uses
// errors.Is(err, fault.ErrInjected) to distinguish transient injected
// faults (worth retrying) from structural ones.
var ErrInjected = errors.New("injected fault")

// Direction identifies one PCIe transfer direction.
type Direction int

// Transfer directions.
const (
	// H2D is host-to-device (swap-in / prefetch).
	H2D Direction = iota
	// D2H is device-to-host (swap-out / passive eviction).
	D2H
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	if d == D2H {
		return "d2h"
	}
	return "h2d"
}

// Default recovery parameters applied when a Plan leaves them zero.
const (
	// DefaultTransferRetries is the retry budget per logical transfer.
	DefaultTransferRetries = 3
	// DefaultKernelSpikeFactor multiplies a spiked kernel's duration.
	DefaultKernelSpikeFactor = 4.0
)

// DefaultRetryBackoff is the base virtual-time backoff before re-issuing a
// failed transfer; it doubles per attempt (sim.Backoff).
const DefaultRetryBackoff = 25 * sim.Microsecond

// Plan is a reproducible fault schedule. The zero value injects nothing.
//
// Plan is a flat, comparable struct on purpose: bench.RunConfig embeds it
// and uses the whole config as a result-cache key.
type Plan struct {
	// Seed selects the schedule; two runs with equal Plans (same seed
	// included) observe identical faults.
	Seed uint64

	// TransferFailRate is the probability in [0,1] that one H2D/D2H DMA
	// attempt aborts mid-flight. The executor retries with backoff up to
	// MaxTransferRetries before declaring the transfer failed.
	TransferFailRate float64
	// MaxTransferRetries bounds retry attempts per logical transfer;
	// 0 means DefaultTransferRetries.
	MaxTransferRetries int
	// RetryBackoff is the base virtual-time delay before the first retry,
	// doubling per attempt; 0 means DefaultRetryBackoff.
	RetryBackoff sim.Time

	// DegradeFactor (>= 1) multiplies transfer durations inside
	// degradation windows, modelling PCIe contention from a co-located
	// job. 0 or 1 disables degradation.
	DegradeFactor float64
	// DegradePeriod is the distance between consecutive window starts in
	// virtual time; 0 disables windows.
	DegradePeriod sim.Time
	// DegradeDuration is the length of each window.
	DegradeDuration sim.Time

	// KernelSpikeRate is the probability that one kernel's duration is
	// multiplied by KernelSpikeFactor (clock throttling, SM contention).
	KernelSpikeRate float64
	// KernelSpikeFactor is the spike multiplier; 0 means
	// DefaultKernelSpikeFactor.
	KernelSpikeFactor float64

	// AllocFailRate is the probability that one device allocation attempt
	// fails spuriously even though memory is available (cudaMalloc
	// returning a transient error). The executor's OOM recovery loop
	// retries these.
	AllocFailRate float64
	// HostFailRate is the probability that one pinned-host reservation
	// fails spuriously (host arena pressure from other pinned users).
	HostFailRate float64
}

// Enabled reports whether the plan injects any fault at all.
func (p Plan) Enabled() bool {
	return p.TransferFailRate > 0 ||
		(p.DegradeFactor > 1 && p.DegradePeriod > 0 && p.DegradeDuration > 0) ||
		p.KernelSpikeRate > 0 || p.AllocFailRate > 0 || p.HostFailRate > 0
}

// TransferRetries reports the effective retry budget.
func (p Plan) TransferRetries() int {
	if p.MaxTransferRetries > 0 {
		return p.MaxTransferRetries
	}
	return DefaultTransferRetries
}

// Backoff reports the effective base retry backoff.
func (p Plan) Backoff() sim.Time {
	if p.RetryBackoff > 0 {
		return p.RetryBackoff
	}
	return DefaultRetryBackoff
}

// SpikeFactor reports the effective kernel spike multiplier.
func (p Plan) SpikeFactor() float64 {
	if p.KernelSpikeFactor > 0 {
		return p.KernelSpikeFactor
	}
	return DefaultKernelSpikeFactor
}

// String renders the plan in ParsePlan's canonical key=value form: the
// output is itself a valid -faults spec, and every valid plan re-parses to
// an equal plan (ParsePlan(p.String()) == p). The zero plan prints "off".
//
// Floats use the shortest representation that round-trips exactly, and
// time fields print in ParsePlan's units (microseconds for backoff,
// milliseconds for the degradation window geometry). When a degradation
// factor is set, the period and window are always emitted — even when
// zero — so ParsePlan's defaulting cannot resurrect fields the plan left
// empty.
func (p Plan) String() string {
	if p == (Plan{}) {
		return "off"
	}
	var parts []string
	add := func(k, v string) { parts = append(parts, k+"="+v) }
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	if p.Seed != 0 {
		add("seed", strconv.FormatUint(p.Seed, 10))
	}
	if p.TransferFailRate != 0 {
		add("transfer", f(p.TransferFailRate))
	}
	if p.MaxTransferRetries != 0 {
		add("retries", strconv.Itoa(p.MaxTransferRetries))
	}
	if p.RetryBackoff != 0 {
		add("backoff", f(float64(p.RetryBackoff)/float64(sim.Microsecond)))
	}
	if p.DegradeFactor != 0 {
		add("degrade", f(p.DegradeFactor))
		add("degrade-period", f(float64(p.DegradePeriod)/float64(sim.Millisecond)))
		add("degrade-window", f(float64(p.DegradeDuration)/float64(sim.Millisecond)))
	} else {
		if p.DegradePeriod != 0 {
			add("degrade-period", f(float64(p.DegradePeriod)/float64(sim.Millisecond)))
		}
		if p.DegradeDuration != 0 {
			add("degrade-window", f(float64(p.DegradeDuration)/float64(sim.Millisecond)))
		}
	}
	if p.KernelSpikeRate != 0 {
		add("kernel", f(p.KernelSpikeRate))
	}
	if p.KernelSpikeFactor != 0 {
		add("kernel-factor", f(p.KernelSpikeFactor))
	}
	if p.AllocFailRate != 0 {
		add("alloc", f(p.AllocFailRate))
	}
	if p.HostFailRate != 0 {
		add("host", f(p.HostFailRate))
	}
	return strings.Join(parts, ",")
}

// DefaultPlan is a moderate chaos profile: occasional transfer aborts and
// allocation hiccups, periodic 4x PCIe degradation, rare kernel spikes.
func DefaultPlan(seed uint64) Plan {
	return Plan{
		Seed:             seed,
		TransferFailRate: 0.02,
		DegradeFactor:    4,
		DegradePeriod:    40 * sim.Millisecond,
		DegradeDuration:  8 * sim.Millisecond,
		KernelSpikeRate:  0.01,
		AllocFailRate:    0.01,
		HostFailRate:     0.005,
	}
}

// ParsePlan builds a Plan from a comma-separated key=value spec, the format
// of capuchin-bench's -faults flag. An empty spec or "off" disables
// injection; "default" (optionally "default,seed=N,...") starts from
// DefaultPlan and applies overrides. Keys:
//
//	seed=N          schedule seed
//	transfer=F      transfer failure probability
//	retries=N       retry budget per transfer
//	backoff=US      base retry backoff in microseconds
//	degrade=F       slowdown factor inside degradation windows
//	degrade-period=MS   window spacing in milliseconds
//	degrade-window=MS   window length in milliseconds
//	kernel=F        kernel spike probability
//	kernel-factor=F kernel spike multiplier
//	alloc=F         spurious device-allocation failure probability
//	host=F          spurious pinned-host reservation failure probability
func ParsePlan(spec string) (Plan, error) {
	var p Plan
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "off" {
		return p, nil
	}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		if field == "default" {
			p = DefaultPlan(p.Seed)
			continue
		}
		k, v, ok := strings.Cut(field, "=")
		if !ok {
			return Plan{}, fmt.Errorf("fault: malformed field %q (want key=value)", field)
		}
		switch k {
		case "seed":
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return Plan{}, fmt.Errorf("fault: bad seed %q: %v", v, err)
			}
			p.Seed = n
		case "retries":
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return Plan{}, fmt.Errorf("fault: bad retries %q", v)
			}
			p.MaxTransferRetries = n
		case "backoff":
			f, err := parseRatio(v)
			if err != nil || f < 0 {
				return Plan{}, fmt.Errorf("fault: bad backoff %q", v)
			}
			p.RetryBackoff = roundTime(f, sim.Microsecond)
		case "degrade-period":
			f, err := parseRatio(v)
			if err != nil || f < 0 {
				return Plan{}, fmt.Errorf("fault: bad degrade-period %q", v)
			}
			p.DegradePeriod = roundTime(f, sim.Millisecond)
		case "degrade-window":
			f, err := parseRatio(v)
			if err != nil || f < 0 {
				return Plan{}, fmt.Errorf("fault: bad degrade-window %q", v)
			}
			p.DegradeDuration = roundTime(f, sim.Millisecond)
		case "transfer", "degrade", "kernel", "kernel-factor", "alloc", "host":
			f, err := parseRatio(v)
			if err != nil {
				return Plan{}, fmt.Errorf("fault: bad %s %q: %v", k, v, err)
			}
			switch k {
			case "transfer":
				p.TransferFailRate = f
			case "degrade":
				p.DegradeFactor = f
				if p.DegradePeriod == 0 {
					p.DegradePeriod = 40 * sim.Millisecond
				}
				if p.DegradeDuration == 0 {
					p.DegradeDuration = 8 * sim.Millisecond
				}
			case "kernel":
				p.KernelSpikeRate = f
			case "kernel-factor":
				p.KernelSpikeFactor = f
			case "alloc":
				p.AllocFailRate = f
			case "host":
				p.HostFailRate = f
			}
		default:
			return Plan{}, fmt.Errorf("fault: unknown field %q", k)
		}
	}
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	return p, nil
}

func parseRatio(v string) (float64, error) { return strconv.ParseFloat(v, 64) }

// roundTime converts a float duration in the given unit to virtual time,
// rounding to the nearest nanosecond. Truncation would break the
// String↔ParsePlan round trip: a nanosecond-granular field printed in
// microseconds picks up a one-ulp float error that truncation turns into
// a whole lost nanosecond.
func roundTime(v float64, unit sim.Time) sim.Time {
	return sim.Time(math.Round(v * float64(unit)))
}

// Validate reports configuration errors (rates out of [0,1], a degradation
// window longer than its period, a sub-unity slowdown).
func (p Plan) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"transfer", p.TransferFailRate},
		{"kernel", p.KernelSpikeRate},
		{"alloc", p.AllocFailRate},
		{"host", p.HostFailRate},
	} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("fault: %s rate %v outside [0,1]", r.name, r.v)
		}
	}
	if p.DegradeFactor != 0 && p.DegradeFactor < 1 {
		return fmt.Errorf("fault: degrade factor %v below 1 (would speed the link up)", p.DegradeFactor)
	}
	for _, d := range []struct {
		name string
		v    sim.Time
	}{
		{"retry backoff", p.RetryBackoff},
		{"degrade period", p.DegradePeriod},
		{"degrade window", p.DegradeDuration},
	} {
		if d.v < 0 {
			return fmt.Errorf("fault: negative %s %v", d.name, d.v)
		}
	}
	if p.MaxTransferRetries < 0 {
		return fmt.Errorf("fault: negative retry budget %d", p.MaxTransferRetries)
	}
	if p.DegradePeriod > 0 && p.DegradeDuration > p.DegradePeriod {
		return fmt.Errorf("fault: degrade window %v longer than period %v", p.DegradeDuration, p.DegradePeriod)
	}
	if p.KernelSpikeFactor != 0 && p.KernelSpikeFactor < 1 {
		return fmt.Errorf("fault: kernel spike factor %v below 1", p.KernelSpikeFactor)
	}
	return nil
}

// Injector answers per-event fault queries for one Plan. It is not safe
// for concurrent use; each exec.Session owns one.
type Injector struct {
	plan     Plan
	degPhase sim.Time
	counts   map[uint64]uint64

	// Query tallies, for diagnostics and tests.
	queries uint64
	faults  uint64
}

// NewInjector builds an injector for the plan. A zero plan yields a
// disabled injector whose queries all answer "no fault" at negligible cost.
func NewInjector(p Plan) *Injector {
	in := &Injector{plan: p}
	if p.Enabled() {
		in.counts = make(map[uint64]uint64)
		if p.DegradePeriod > 0 {
			in.degPhase = sim.Time(splitmix64(p.Seed^0x9e3779b97f4a7c15) % uint64(p.DegradePeriod))
		}
	}
	return in
}

// Enabled reports whether the injector can produce any fault.
func (in *Injector) Enabled() bool { return in != nil && in.plan.Enabled() }

// Plan returns the injector's plan.
func (in *Injector) Plan() Plan { return in.plan }

// Queries and Faults report how many decisions were drawn and how many
// came up faulty, for diagnostics.
func (in *Injector) Queries() uint64 { return in.queries }

// Faults reports the number of faulty decisions drawn so far.
func (in *Injector) Faults() uint64 { return in.faults }

// draw returns a deterministic uniform sample in [0,1) for the n-th query
// at (site, key). The counter is keyed by the pair, so retries observe
// fresh draws while queries for other subjects never perturb this stream.
func (in *Injector) draw(site string, key string) float64 {
	h := hashString(site)
	h = hashCombine(h, hashString(key))
	n := in.counts[h]
	in.counts[h] = n + 1
	bits := splitmix64(in.plan.Seed ^ h ^ (n * 0xbf58476d1ce4e5b9))
	return float64(bits>>11) / float64(1<<53)
}

// decide draws once and tallies.
func (in *Injector) decide(site, key string, rate float64) bool {
	if !in.Enabled() || rate <= 0 {
		return false
	}
	in.queries++
	if in.draw(site, key) < rate {
		in.faults++
		return true
	}
	return false
}

// TransferFails reports whether one DMA attempt for the given subject
// (tensor ID) aborts mid-flight.
func (in *Injector) TransferFails(dir Direction, key string) bool {
	return in.decide("transfer/"+dir.String(), key, in.plan.TransferFailRate)
}

// LinkSlowdown reports the transfer-duration multiplier in effect at the
// given virtual time: DegradeFactor inside a degradation window, 1 outside.
func (in *Injector) LinkSlowdown(at sim.Time) float64 {
	if !in.Enabled() || in.plan.DegradeFactor <= 1 || in.plan.DegradePeriod <= 0 {
		return 1
	}
	if at < 0 {
		return 1
	}
	pos := (at + in.degPhase) % in.plan.DegradePeriod
	if pos < in.plan.DegradeDuration {
		return in.plan.DegradeFactor
	}
	return 1
}

// LinkDegraded reports whether a degradation window is in effect at the
// given time — the signal the executor uses to prefer recomputation over a
// congested link.
func (in *Injector) LinkDegraded(at sim.Time) bool { return in.LinkSlowdown(at) > 1 }

// KernelSpike reports the duration multiplier for one kernel launch: the
// plan's spike factor when a spike fires, 1 otherwise.
func (in *Injector) KernelSpike(nodeID string) float64 {
	if in.decide("kernel", nodeID, in.plan.KernelSpikeRate) {
		return in.plan.SpikeFactor()
	}
	return 1
}

// AllocFails reports whether one device-allocation attempt fails
// spuriously.
func (in *Injector) AllocFails(site string) bool {
	return in.decide("alloc", site, in.plan.AllocFailRate)
}

// HostFails reports whether one pinned-host reservation fails spuriously.
func (in *Injector) HostFails(key string) bool {
	return in.decide("host", key, in.plan.HostFailRate)
}

// splitmix64 is the SplitMix64 finalizer: a high-quality 64-bit mixer used
// to turn (seed, site, counter) into independent uniform bits.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashString is FNV-1a over s.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// hashCombine folds b into a.
func hashCombine(a, b uint64) uint64 {
	return splitmix64(a ^ (b + 0x9e3779b97f4a7c15 + (a << 6) + (a >> 2)))
}
