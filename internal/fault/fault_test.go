package fault

import (
	"errors"
	"testing"

	"capuchin/internal/sim"
)

func TestZeroPlanDisabled(t *testing.T) {
	in := NewInjector(Plan{})
	if in.Enabled() {
		t.Fatal("zero plan must be disabled")
	}
	if in.TransferFails(H2D, "t1") || in.AllocFails("alloc") || in.HostFails("t1") {
		t.Fatal("disabled injector produced a fault")
	}
	if f := in.KernelSpike("n1"); f != 1 {
		t.Fatalf("KernelSpike = %v, want 1", f)
	}
	if f := in.LinkSlowdown(sim.Second); f != 1 {
		t.Fatalf("LinkSlowdown = %v, want 1", f)
	}
	if in.Queries() != 0 {
		t.Fatalf("disabled injector drew %d samples", in.Queries())
	}
}

// replayDecisions records a fixed query sequence's outcomes.
func replayDecisions(in *Injector) []bool {
	var out []bool
	for i := 0; i < 50; i++ {
		out = append(out, in.TransferFails(D2H, "conv1:0"))
		out = append(out, in.TransferFails(H2D, "conv2:0"))
		out = append(out, in.AllocFails("device"))
		out = append(out, in.HostFails("conv1:0"))
		out = append(out, in.KernelSpike("node7") > 1)
	}
	return out
}

func TestSameSeedSameSchedule(t *testing.T) {
	p := DefaultPlan(42)
	a := replayDecisions(NewInjector(p))
	b := replayDecisions(NewInjector(p))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs across identical injectors", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	// High rate so schedules are dense enough that a collision across all
	// 250 decisions is essentially impossible.
	mk := func(seed uint64) Plan {
		p := DefaultPlan(seed)
		p.TransferFailRate = 0.5
		return p
	}
	a := replayDecisions(NewInjector(mk(1)))
	b := replayDecisions(NewInjector(mk(2)))
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical schedules")
	}
}

// TestKeyedStreamsIndependent verifies the ordering-robustness property:
// interleaving queries for an unrelated subject does not perturb the
// decisions another subject observes.
func TestKeyedStreamsIndependent(t *testing.T) {
	p := Plan{Seed: 7, TransferFailRate: 0.3}
	plain := NewInjector(p)
	noisy := NewInjector(p)
	var want, got []bool
	for i := 0; i < 100; i++ {
		want = append(want, plain.TransferFails(D2H, "a"))
		noisy.TransferFails(D2H, "b") // extra interleaved traffic
		noisy.TransferFails(H2D, "a") // same key, different site
		got = append(got, noisy.TransferFails(D2H, "a"))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("decision %d for subject a shifted under interleaved queries", i)
		}
	}
}

func TestRateExtremes(t *testing.T) {
	always := NewInjector(Plan{Seed: 3, TransferFailRate: 1})
	for i := 0; i < 20; i++ {
		if !always.TransferFails(H2D, "t") {
			t.Fatal("rate 1 must always fail")
		}
	}
	// Rate 0 on an otherwise-enabled plan never fails.
	never := NewInjector(Plan{Seed: 3, TransferFailRate: 1, AllocFailRate: 0})
	for i := 0; i < 20; i++ {
		if never.AllocFails("device") {
			t.Fatal("rate 0 must never fail")
		}
	}
}

func TestRateApproximatelyHonored(t *testing.T) {
	in := NewInjector(Plan{Seed: 11, TransferFailRate: 0.25})
	n, hits := 10000, 0
	for i := 0; i < n; i++ {
		if in.TransferFails(D2H, "x") {
			hits++
		}
	}
	got := float64(hits) / float64(n)
	if got < 0.22 || got > 0.28 {
		t.Fatalf("empirical rate %.3f far from configured 0.25", got)
	}
}

func TestLinkSlowdownWindows(t *testing.T) {
	p := Plan{
		Seed:            5,
		DegradeFactor:   4,
		DegradePeriod:   10 * sim.Millisecond,
		DegradeDuration: 2 * sim.Millisecond,
	}
	in := NewInjector(p)
	var degraded, total int
	for at := sim.Time(0); at < sim.Second; at += 100 * sim.Microsecond {
		total++
		f := in.LinkSlowdown(at)
		if f != 1 && f != 4 {
			t.Fatalf("slowdown %v at %v, want 1 or 4", f, at)
		}
		if f == 4 {
			degraded++
			if !in.LinkDegraded(at) {
				t.Fatalf("LinkDegraded false at %v despite slowdown", at)
			}
		}
	}
	frac := float64(degraded) / float64(total)
	if frac < 0.15 || frac > 0.25 {
		t.Fatalf("degraded fraction %.3f, want about duration/period = 0.2", frac)
	}
	// Windows are a pure function of time: re-querying gives the same answer.
	if in.LinkSlowdown(3*sim.Millisecond) != in.LinkSlowdown(3*sim.Millisecond) {
		t.Fatal("LinkSlowdown not idempotent")
	}
}

func TestPlanDefaults(t *testing.T) {
	var p Plan
	if p.TransferRetries() != DefaultTransferRetries {
		t.Fatalf("TransferRetries = %d, want %d", p.TransferRetries(), DefaultTransferRetries)
	}
	if p.Backoff() != DefaultRetryBackoff {
		t.Fatalf("Backoff = %v, want %v", p.Backoff(), DefaultRetryBackoff)
	}
	if p.SpikeFactor() != DefaultKernelSpikeFactor {
		t.Fatalf("SpikeFactor = %v, want %v", p.SpikeFactor(), DefaultKernelSpikeFactor)
	}
	p.MaxTransferRetries = 7
	p.RetryBackoff = sim.Millisecond
	p.KernelSpikeFactor = 2.5
	if p.TransferRetries() != 7 || p.Backoff() != sim.Millisecond || p.SpikeFactor() != 2.5 {
		t.Fatal("explicit recovery parameters not honored")
	}
}

func TestParsePlan(t *testing.T) {
	if p, err := ParsePlan(""); err != nil || p.Enabled() {
		t.Fatalf("empty spec: plan %+v err %v, want disabled", p, err)
	}
	if p, err := ParsePlan("off"); err != nil || p.Enabled() {
		t.Fatalf("off spec: plan %+v err %v, want disabled", p, err)
	}
	p, err := ParsePlan("default,seed=9")
	if err != nil {
		t.Fatal(err)
	}
	want := DefaultPlan(0)
	want.Seed = 9
	if p != want {
		t.Fatalf("default,seed=9 = %+v, want %+v", p, want)
	}
	p, err = ParsePlan("seed=3,transfer=0.1,degrade=2,degrade-period=20,degrade-window=5,kernel=0.05,kernel-factor=3,alloc=0.02,host=0.01,retries=5,backoff=100")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 3 || p.TransferFailRate != 0.1 || p.DegradeFactor != 2 ||
		p.DegradePeriod != 20*sim.Millisecond || p.DegradeDuration != 5*sim.Millisecond ||
		p.KernelSpikeRate != 0.05 || p.KernelSpikeFactor != 3 ||
		p.AllocFailRate != 0.02 || p.HostFailRate != 0.01 ||
		p.MaxTransferRetries != 5 || p.RetryBackoff != 100*sim.Microsecond {
		t.Fatalf("full spec parsed to %+v", p)
	}
	for _, bad := range []string{
		"nonsense",
		"transfer=2",  // rate above 1
		"degrade=0.5", // sub-unity slowdown
		"seed=abc",    // malformed number
		"mystery=1",   // unknown key
		"degrade=2,degrade-period=1,degrade-window=5", // window > period
	} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) accepted invalid spec", bad)
		}
	}
}

func TestPlanString(t *testing.T) {
	if got := (Plan{}).String(); got != "off" {
		t.Fatalf("zero plan String = %q", got)
	}
	s := DefaultPlan(4).String()
	if s == "" || s == "off" {
		t.Fatalf("enabled plan String = %q", s)
	}
}

func TestErrInjectedSentinel(t *testing.T) {
	wrapped := errorsJoin()
	if !errors.Is(wrapped, ErrInjected) {
		t.Fatal("wrapped injected fault must match ErrInjected")
	}
}

// errorsJoin builds a representative wrapped chain the executor produces.
func errorsJoin() error {
	return &wrapErr{ErrInjected}
}

type wrapErr struct{ err error }

func (w *wrapErr) Error() string { return "transfer aborted: " + w.err.Error() }
func (w *wrapErr) Unwrap() error { return w.err }
