// Package tensor defines the tensor abstraction that Capuchin manages:
// shaped, typed values identified by a stable ID, carrying the lineage
// (producer operation and input tensors) needed for recomputation and the
// runtime residency status driven by swapping.
//
// Tensors are symbolic: instead of element data they carry a 64-bit
// fingerprint derived from the producer operation and the fingerprints of
// its inputs. The fingerprint is the simulator's correctness oracle — any
// schedule of evictions, swaps and recomputations must deliver to every
// consumer a tensor whose fingerprint matches the one from an uncapped run
// (the paper's "both approaches do not affect training accuracy" invariant).
package tensor

import (
	"fmt"
	"strings"

	"capuchin/internal/memory"
	"capuchin/internal/sim"
)

// DType is a tensor element type.
type DType int

// Supported element types.
const (
	Float32 DType = iota
	Float16
	Int32
	Int64
	Bool
)

// Size reports the element size in bytes.
func (d DType) Size() int64 {
	switch d {
	case Float32, Int32:
		return 4
	case Float16:
		return 2
	case Int64:
		return 8
	case Bool:
		return 1
	default:
		panic(fmt.Sprintf("tensor: unknown dtype %d", int(d)))
	}
}

// String implements fmt.Stringer.
func (d DType) String() string {
	switch d {
	case Float32:
		return "f32"
	case Float16:
		return "f16"
	case Int32:
		return "i32"
	case Int64:
		return "i64"
	case Bool:
		return "bool"
	default:
		return fmt.Sprintf("dtype(%d)", int(d))
	}
}

// Shape is a tensor shape; dimension order is NCHW for image tensors and
// [batch, seq, hidden] for sequence tensors.
type Shape []int64

// Elems reports the number of elements (1 for a scalar / empty shape).
func (s Shape) Elems() int64 {
	n := int64(1)
	for _, d := range s {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension in shape %v", []int64(s)))
		}
		n *= d
	}
	return n
}

// Equal reports whether two shapes are identical.
func (s Shape) Equal(o Shape) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// String implements fmt.Stringer, e.g. "[64 3 224 224]".
func (s Shape) String() string {
	parts := make([]string, len(s))
	for i, d := range s {
		parts[i] = fmt.Sprintf("%d", d)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// Status is a tensor's residency state (§5.2, Listing 1). Tensors evicted
// for recomputation use only In, Freed and Recompute.
type Status int

// Residency states.
const (
	// In: resident in device memory.
	In Status = iota
	// SwappingOut: a D2H copy is in flight; device memory still held.
	SwappingOut
	// Out: resident only in host memory.
	Out
	// SwappingIn: an H2D copy is in flight; device memory already held.
	SwappingIn
	// Recompute: evicted with no host copy; must be recomputed from lineage.
	Recompute
	// Freed: dead — past its last use in the iteration.
	Freed
)

// String implements fmt.Stringer.
func (st Status) String() string {
	switch st {
	case In:
		return "IN"
	case SwappingOut:
		return "SWAPPING_OUT"
	case Out:
		return "OUT"
	case SwappingIn:
		return "SWAPPING_IN"
	case Recompute:
		return "RECOMPUTE"
	case Freed:
		return "FREED"
	default:
		return fmt.Sprintf("status(%d)", int(st))
	}
}

// legalTransitions encodes the residency state machine.
var legalTransitions = map[Status][]Status{
	In:          {SwappingOut, Recompute, Freed, In},
	SwappingOut: {Out, In},                      // In: swap-out cancelled because the tensor was re-accessed first
	Out:         {SwappingIn, Recompute, Freed}, // Recompute: swap-in abandoned under faults; regenerate from lineage
	SwappingIn:  {In, Out},
	Recompute:   {In, Freed},
	Freed:       {In}, // a new iteration re-materializes the tensor
}

// Tensor is one value flowing through the computation. Mirrors the paper's
// Listing 1: a unique ID, access bookkeeping, residency status, and lineage
// (inputs + operation name) for recomputation.
type Tensor struct {
	// ID is stable across iterations, e.g. "conv2_3/Conv2D:0". The paper
	// relies on this to apply a policy learned in one iteration to the
	// same logical tensor in the next, even though its device address
	// changes (§5.2).
	ID string

	Shape Shape
	DType DType

	// OpName is the producing operation's node ID and Inputs its input
	// tensors; together they form the lineage used for recomputation.
	OpName string
	Inputs []*Tensor

	// Fingerprint is the content oracle: a hash of the producer and the
	// input fingerprints, assigned when the producing op executes.
	Fingerprint uint64

	// Persistent marks model weights and optimizer state: resident for
	// the whole training run and never an eviction candidate (§2.1).
	Persistent bool

	// Gradient marks backward-phase outputs, which are temporary and
	// freed immediately after their use (§2.1).
	Gradient bool

	// Idx is the tensor's dense index within its graph, assigned by the
	// graph reindex pass. Hot-path session state is keyed by Idx so the
	// inner loop never hashes tensor ID strings. -1 until assigned.
	Idx int32

	// Runtime state.
	Status      Status
	AccessCount int
	LastAccess  sim.Time
	Alloc       *memory.Allocation // device memory when In/SwappingOut/SwappingIn
}

// New creates a tensor with the given identity and shape.
func New(id string, shape Shape, dtype DType) *Tensor {
	return &Tensor{ID: id, Shape: shape, DType: dtype, Status: Freed, Idx: -1}
}

// Arena block-allocates tensors for bulk producers (the graph builder
// creates thousands per model). Tensors from an arena are identical to
// New's and live as long as any tensor in their block is referenced.
type Arena struct {
	chunk []Tensor
}

// arenaChunk is the arena block size; one ResNet-50 build fills a few.
const arenaChunk = 512

// New creates a tensor inside the arena, equivalent to the package-level
// New.
func (a *Arena) New(id string, shape Shape, dtype DType) *Tensor {
	if len(a.chunk) == cap(a.chunk) {
		a.chunk = make([]Tensor, 0, arenaChunk)
	}
	a.chunk = append(a.chunk, Tensor{ID: id, Shape: shape, DType: dtype, Status: Freed, Idx: -1})
	return &a.chunk[len(a.chunk)-1]
}

// Bytes reports the tensor's device memory footprint.
func (t *Tensor) Bytes() int64 { return t.Shape.Elems() * t.DType.Size() }

// Resident reports whether the tensor's bytes are valid in device memory.
// A tensor mid-swap-out is still readable on device.
func (t *Tensor) Resident() bool {
	return t.Status == In || t.Status == SwappingOut
}

// OnDevice reports whether the tensor holds device memory at all (including
// an in-flight swap-in whose buffer is already allocated).
func (t *Tensor) OnDevice() bool {
	return t.Status == In || t.Status == SwappingOut || t.Status == SwappingIn
}

// TransitionTo moves the tensor to a new residency status, enforcing the
// state machine. It returns an error naming both states on an illegal move,
// which in practice indicates an executor or policy bug.
func (t *Tensor) TransitionTo(next Status) error {
	for _, ok := range legalTransitions[t.Status] {
		if ok == next {
			t.Status = next
			return nil
		}
	}
	return fmt.Errorf("tensor %s: illegal status transition %v -> %v", t.ID, t.Status, next)
}

// Touch records an access at the given virtual time and returns the new
// access count (1 for the producing access).
func (t *Tensor) Touch(at sim.Time) int {
	t.AccessCount++
	t.LastAccess = at
	return t.AccessCount
}

// ResetIteration clears per-iteration runtime state. Identity, lineage and
// persistence survive; fingerprints of persistent tensors survive too
// (weights carry over between iterations).
func (t *Tensor) ResetIteration() {
	t.AccessCount = 0
	t.LastAccess = 0
	if !t.Persistent {
		t.Status = Freed
		t.Fingerprint = 0
		t.Alloc = nil
	}
}

// String implements fmt.Stringer.
func (t *Tensor) String() string {
	return fmt.Sprintf("%s%s:%s(%s)", t.ID, t.Shape, t.DType, t.Status)
}

// fnv64Offset and fnv64Prime are the FNV-1a constants.
const (
	fnv64Offset = 14695981039346656037
	fnv64Prime  = 1099511628211
)

// HashSeed starts a fingerprint chain from a string (an op's node ID).
func HashSeed(s string) uint64 {
	h := uint64(fnv64Offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnv64Prime
	}
	return h
}

// HashCombine folds a value into a fingerprint chain.
func HashCombine(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= (v >> (8 * i)) & 0xff
		h *= fnv64Prime
	}
	return h
}

// ComputeFingerprint derives an output fingerprint from the producing op
// and its input fingerprints. outputIndex distinguishes multiple outputs of
// one op.
func ComputeFingerprint(opID string, outputIndex int, inputs []uint64) uint64 {
	h := HashSeed(opID)
	h = HashCombine(h, uint64(outputIndex))
	for _, in := range inputs {
		h = HashCombine(h, in)
	}
	return h
}
