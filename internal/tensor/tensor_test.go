package tensor

import (
	"testing"
	"testing/quick"
)

func TestDTypeSize(t *testing.T) {
	cases := []struct {
		d    DType
		want int64
	}{
		{Float32, 4}, {Float16, 2}, {Int32, 4}, {Int64, 8}, {Bool, 1},
	}
	for _, c := range cases {
		if got := c.d.Size(); got != c.want {
			t.Errorf("%v.Size() = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestDTypeString(t *testing.T) {
	if Float32.String() != "f32" || Int64.String() != "i64" {
		t.Error("DType.String mismatch")
	}
}

func TestShapeElems(t *testing.T) {
	cases := []struct {
		s    Shape
		want int64
	}{
		{Shape{}, 1},
		{Shape{5}, 5},
		{Shape{64, 3, 224, 224}, 64 * 3 * 224 * 224},
		{Shape{2, 0, 3}, 0},
	}
	for _, c := range cases {
		if got := c.s.Elems(); got != c.want {
			t.Errorf("%v.Elems() = %d, want %d", c.s, got, c.want)
		}
	}
}

func TestShapeNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on negative dimension")
		}
	}()
	Shape{2, -1}.Elems()
}

func TestShapeEqual(t *testing.T) {
	if !(Shape{1, 2}).Equal(Shape{1, 2}) {
		t.Error("equal shapes reported unequal")
	}
	if (Shape{1, 2}).Equal(Shape{1, 2, 3}) || (Shape{1, 2}).Equal(Shape{2, 1}) {
		t.Error("unequal shapes reported equal")
	}
}

func TestShapeString(t *testing.T) {
	if got := (Shape{64, 3, 224, 224}).String(); got != "[64 3 224 224]" {
		t.Errorf("String() = %q", got)
	}
	if got := (Shape{}).String(); got != "[]" {
		t.Errorf("empty String() = %q", got)
	}
}

func TestTensorBytes(t *testing.T) {
	tt := New("x", Shape{2, 3}, Float32)
	if got := tt.Bytes(); got != 24 {
		t.Errorf("Bytes = %d, want 24", got)
	}
	th := New("y", Shape{2, 3}, Float16)
	if got := th.Bytes(); got != 12 {
		t.Errorf("f16 Bytes = %d, want 12", got)
	}
}

func TestStatusStrings(t *testing.T) {
	want := map[Status]string{
		In: "IN", SwappingOut: "SWAPPING_OUT", Out: "OUT",
		SwappingIn: "SWAPPING_IN", Recompute: "RECOMPUTE", Freed: "FREED",
	}
	for st, w := range want {
		if st.String() != w {
			t.Errorf("%d.String() = %q, want %q", int(st), st.String(), w)
		}
	}
}

func TestStatusMachineSwapCycle(t *testing.T) {
	tt := New("x", Shape{4}, Float32)
	// Freed -> In (produced) -> SwappingOut -> Out -> SwappingIn -> In.
	seq := []Status{In, SwappingOut, Out, SwappingIn, In}
	for _, st := range seq {
		if err := tt.TransitionTo(st); err != nil {
			t.Fatalf("legal transition rejected: %v", err)
		}
	}
}

func TestStatusMachineRecomputeCycle(t *testing.T) {
	tt := New("x", Shape{4}, Float32)
	for _, st := range []Status{In, Recompute, In, Freed} {
		if err := tt.TransitionTo(st); err != nil {
			t.Fatalf("legal transition rejected: %v", err)
		}
	}
}

func TestStatusMachineCancelledSwapOut(t *testing.T) {
	// A tensor re-accessed while swapping out stays on device: the paper's
	// decoupled swap allows the computation to keep using it.
	tt := New("x", Shape{4}, Float32)
	for _, st := range []Status{In, SwappingOut, In} {
		if err := tt.TransitionTo(st); err != nil {
			t.Fatalf("legal transition rejected: %v", err)
		}
	}
}

func TestStatusMachineIllegal(t *testing.T) {
	illegal := []struct{ from, to Status }{
		{Freed, Out},
		{Freed, SwappingIn},
		{Out, In}, // must pass through SwappingIn
		{Recompute, Out},
		{SwappingOut, Recompute},
	}
	for _, c := range illegal {
		tt := New("x", Shape{4}, Float32)
		tt.Status = c.from
		if err := tt.TransitionTo(c.to); err == nil {
			t.Errorf("illegal transition %v -> %v accepted", c.from, c.to)
		}
	}
}

func TestResidentAndOnDevice(t *testing.T) {
	tt := New("x", Shape{4}, Float32)
	cases := []struct {
		st       Status
		resident bool
		onDev    bool
	}{
		{In, true, true},
		{SwappingOut, true, true},
		{Out, false, false},
		{SwappingIn, false, true},
		{Recompute, false, false},
		{Freed, false, false},
	}
	for _, c := range cases {
		tt.Status = c.st
		if tt.Resident() != c.resident {
			t.Errorf("%v: Resident = %v, want %v", c.st, tt.Resident(), c.resident)
		}
		if tt.OnDevice() != c.onDev {
			t.Errorf("%v: OnDevice = %v, want %v", c.st, tt.OnDevice(), c.onDev)
		}
	}
}

func TestTouch(t *testing.T) {
	tt := New("x", Shape{4}, Float32)
	if n := tt.Touch(100); n != 1 {
		t.Errorf("first Touch = %d, want 1", n)
	}
	if n := tt.Touch(200); n != 2 {
		t.Errorf("second Touch = %d, want 2", n)
	}
	if tt.LastAccess != 200 {
		t.Errorf("LastAccess = %d, want 200", tt.LastAccess)
	}
}

func TestResetIteration(t *testing.T) {
	tt := New("x", Shape{4}, Float32)
	tt.TransitionTo(In)
	tt.Fingerprint = 42
	tt.Touch(10)
	tt.ResetIteration()
	if tt.Status != Freed || tt.Fingerprint != 0 || tt.AccessCount != 0 || tt.LastAccess != 0 {
		t.Errorf("ResetIteration left state: %+v", tt)
	}

	w := New("w", Shape{4}, Float32)
	w.Persistent = true
	w.TransitionTo(In)
	w.Fingerprint = 42
	w.ResetIteration()
	if w.Status != In || w.Fingerprint != 42 {
		t.Error("ResetIteration cleared persistent tensor state")
	}
}

func TestFingerprintDeterminism(t *testing.T) {
	a := ComputeFingerprint("conv1", 0, []uint64{1, 2, 3})
	b := ComputeFingerprint("conv1", 0, []uint64{1, 2, 3})
	if a != b {
		t.Error("fingerprint not deterministic")
	}
	if a == ComputeFingerprint("conv2", 0, []uint64{1, 2, 3}) {
		t.Error("fingerprint ignores op ID")
	}
	if a == ComputeFingerprint("conv1", 1, []uint64{1, 2, 3}) {
		t.Error("fingerprint ignores output index")
	}
	if a == ComputeFingerprint("conv1", 0, []uint64{1, 2, 4}) {
		t.Error("fingerprint ignores inputs")
	}
	if a == ComputeFingerprint("conv1", 0, []uint64{2, 1, 3}) {
		t.Error("fingerprint ignores input order")
	}
}

// Property: fingerprints depend on every input and are order-sensitive.
func TestFingerprintSensitivityProperty(t *testing.T) {
	f := func(op string, idx uint8, ins []uint64, flip uint8) bool {
		if len(ins) == 0 {
			return true
		}
		orig := ComputeFingerprint(op, int(idx), ins)
		j := int(flip) % len(ins)
		mutated := make([]uint64, len(ins))
		copy(mutated, ins)
		mutated[j] ^= 1
		return orig != ComputeFingerprint(op, int(idx), mutated)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTensorString(t *testing.T) {
	tt := New("conv1:0", Shape{2, 3}, Float32)
	got := tt.String()
	want := "conv1:0[2 3]:f32(FREED)"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
