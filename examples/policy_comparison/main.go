// Policy comparison: every memory-management system side by side on one
// workload under the same memory oversubscription (the comparison behind
// the paper's Fig. 9).
//
// Run with:
//
//	go run ./examples/policy_comparison [-model inceptionv3] [-batch 0]
package main

import (
	"flag"
	"fmt"
	"strings"

	"capuchin/internal/bench"
	"capuchin/internal/hw"
	"capuchin/internal/models"
)

func main() {
	model := flag.String("model", "inceptionv3", "workload: "+strings.Join(models.Names(), ", "))
	batch := flag.Int64("batch", 0, "batch size (0 = 1.5x the framework's maximum)")
	flag.Parse()

	dev := hw.P100()
	tfMax := bench.MaxBatch(bench.RunConfig{Model: *model, System: bench.SystemTF, Device: dev})
	b := *batch
	if b == 0 {
		b = tfMax * 3 / 2
	}
	fmt.Printf("%s on %s; framework max batch %d, comparing at batch %d\n\n", *model, dev.Name, tfMax, b)
	fmt.Printf("%-22s %12s %12s %10s %10s %10s\n",
		"system", "samples/s", "iter time", "swapped", "recompute", "stall")

	systems := []bench.System{
		bench.SystemTF,
		bench.SystemVDNN,
		bench.SystemSuperNeurons,
		bench.SystemOpenAIMemory,
		bench.SystemOpenAISpeed,
		bench.SystemCapuchinSwap,
		bench.SystemCapuchinRecompute,
		bench.SystemCapuchin,
	}
	for _, sys := range systems {
		if *model == "bert" && sys == bench.SystemVDNN {
			continue
		}
		r := bench.Run(bench.RunConfig{Model: *model, Batch: b, System: sys, Device: dev, Iterations: 8})
		if !r.OK {
			fmt.Printf("%-22s %12s\n", sys, "OOM")
			continue
		}
		fmt.Printf("%-22s %12.1f %12v %9dM %10d %10v\n",
			sys, r.Throughput, r.Steady.Duration,
			r.Steady.SwapOutBytes>>20, r.Steady.RecomputeCount, r.Steady.StallTime)
	}
	fmt.Println("\npaper: Capuchin consistently best; vDNN suffers layer-wise sync stalls;")
	fmt.Println("checkpointing pays recompute time for every dropped tensor")
}
