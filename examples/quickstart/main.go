// Quickstart: train a small CNN under a tight memory cap with Capuchin.
//
// This example walks the full public surface in ~60 lines: build a model
// graph, create a session against a simulated GPU, attach the Capuchin
// policy, run a few iterations, and confirm — via the simulator's
// fingerprint oracle — that memory management never changed the training
// computation.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"capuchin/internal/core"
	"capuchin/internal/exec"
	"capuchin/internal/graph"
	"capuchin/internal/hw"
	"capuchin/internal/models"
)

func main() {
	const batch = 96
	build := func() *graph.Graph {
		g, err := models.ResNet50(batch, graph.GraphModeOptions())
		if err != nil {
			log.Fatal(err)
		}
		return g
	}

	// Reference run: a GPU with plenty of memory and no policy.
	ref, err := exec.NewSession(build(), exec.Config{Device: hw.P100().WithMemory(64 * hw.GiB)})
	if err != nil {
		log.Fatal(err)
	}
	refStats, err := ref.Run(3)
	if err != nil {
		log.Fatal(err)
	}

	// The same training job on a quarter of the memory, with Capuchin.
	capPolicy := core.New(core.Options{})
	dev := hw.P100().WithMemory(6 * hw.GiB)
	s, err := exec.NewSession(build(), exec.Config{
		Device:              dev,
		Policy:              capPolicy,
		CollectiveRecompute: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	stats, err := s.Run(3)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("ResNet-50, batch %d on %s capped at 6 GiB\n\n", batch, dev.Name)
	for i, st := range stats {
		mode := "guided"
		if i == 0 {
			mode = "measured (passive)"
		}
		fmt.Printf("iter %d [%s]: %v/iter, %.1f img/s, swapped %d MB, recomputed %d tensors\n",
			i, mode, st.Duration, st.Throughput(batch),
			st.SwapOutBytes>>20, st.RecomputeCount)
	}
	fmt.Printf("\n%s\n", capPolicy.Summary())

	slowdown := float64(stats[2].Duration)/float64(refStats[2].Duration) - 1
	fmt.Printf("\noverhead vs. uncapped GPU: %.1f%%\n", slowdown*100)

	// The oracle: identical parameter fingerprints prove swapping and
	// recomputation never altered a single tensor value.
	if stats[2].ParamFingerprint == refStats[2].ParamFingerprint {
		fmt.Println("fingerprint oracle: PASS — training is bit-identical to the uncapped run")
	} else {
		fmt.Println("fingerprint oracle: FAIL — memory management corrupted the computation")
	}
}
