// Eager-mode DenseNet: Capuchin is the only policy that works without a
// computation graph (§6.4).
//
// Imperative (eager) execution dispatches operations one by one and keeps
// every forward activation alive on the autograd tape, so it is both
// slower and more memory-hungry than graph execution — and because there
// is no graph to analyze ahead of time, vDNN and gradient checkpointing
// simply cannot run. Capuchin's runtime access tracking needs no graph.
//
// Run with:
//
//	go run ./examples/eager_densenet
package main

import (
	"fmt"
	"log"

	"capuchin/internal/bench"
	"capuchin/internal/core"
	"capuchin/internal/exec"
	"capuchin/internal/graph"
	"capuchin/internal/hw"
	"capuchin/internal/models"
)

func main() {
	dev := hw.P100()
	const batch = 64

	// Same model, both execution modes, no memory management.
	run := func(mode exec.Mode) exec.IterStats {
		opts := graph.GraphModeOptions()
		if mode == exec.EagerMode {
			opts = graph.EagerModeOptions()
		}
		g, err := models.DenseNet121(batch, opts)
		if err != nil {
			log.Fatal(err)
		}
		s, err := exec.NewSession(g, exec.Config{Device: dev.WithMemory(64 * hw.GiB), Mode: mode})
		if err != nil {
			log.Fatal(err)
		}
		st, err := s.RunIteration()
		if err != nil {
			log.Fatal(err)
		}
		st.PeakBytes = s.Pool().Peak()
		return st
	}
	gs := run(exec.GraphMode)
	es := run(exec.EagerMode)
	fmt.Printf("DenseNet-121, batch %d, uncapped memory:\n", batch)
	fmt.Printf("  graph mode: %v/iter, peak %5.2f GiB\n", gs.Duration, float64(gs.PeakBytes)/float64(hw.GiB))
	fmt.Printf("  eager mode: %v/iter, peak %5.2f GiB  (dispatch overhead + tape retention)\n\n",
		es.Duration, float64(es.PeakBytes)/float64(hw.GiB))

	// Maximum batch on the real 16 GiB card, eager mode.
	tfMax := bench.MaxBatch(bench.RunConfig{Model: "densenet", System: bench.SystemTF, Device: dev, Mode: exec.EagerMode})
	capMax := bench.MaxBatch(bench.RunConfig{Model: "densenet", System: bench.SystemCapuchin, Device: dev, Mode: exec.EagerMode})
	fmt.Printf("eager-mode maximum batch: framework %d, Capuchin %d (%.1fx)\n",
		tfMax, capMax, float64(capMax)/float64(tfMax))

	// Capuchin working without a graph: run well past the framework limit.
	over := tfMax * 2
	c := core.New(core.Options{})
	g, err := models.DenseNet121(over, graph.EagerModeOptions())
	if err != nil {
		log.Fatal(err)
	}
	s, err := exec.NewSession(g, exec.Config{
		Device: dev, Mode: exec.EagerMode, Policy: c, CollectiveRecompute: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	stats, err := s.Run(4)
	if err != nil {
		log.Fatal(err)
	}
	last := stats[len(stats)-1]
	fmt.Printf("\nCapuchin at batch %d (2x the eager framework limit): %.1f img/s\n%s\n",
		over, last.Throughput(over), c.Summary())
	fmt.Println("\npaper: eager DenseNet 70 -> 190 with Capuchin; no other system supports eager mode")
}
