// BERT large batch: the paper's headline NLP result (§1, Table 2).
//
// Original TensorFlow tops out around batch 64 when training BERT on a
// 16 GB card; Capuchin reaches 7x that by swapping attention matrices and
// recomputing cheap activations. This example finds both limits on the
// simulated P100 and shows throughput across the extended batch range —
// including the counterintuitive effect the paper reports in §6.3.2: BERT
// gets *faster* per sample as the batch grows, because larger kernels
// saturate the GPU.
//
// Run with:
//
//	go run ./examples/bert_large_batch
package main

import (
	"fmt"

	"capuchin/internal/bench"
	"capuchin/internal/hw"
)

func main() {
	dev := hw.P100()
	fmt.Printf("BERT-Base (seq 384) on %s\n\n", dev.Name)

	tfMax := bench.MaxBatch(bench.RunConfig{Model: "bert", System: bench.SystemTF, Device: dev})
	capMax := bench.MaxBatch(bench.RunConfig{Model: "bert", System: bench.SystemCapuchin, Device: dev})
	fmt.Printf("maximum batch, original framework: %d\n", tfMax)
	fmt.Printf("maximum batch, Capuchin:           %d (%.1fx)\n\n", capMax, float64(capMax)/float64(tfMax))

	fmt.Println("batch   system     samples/s   GPU-saturation effect")
	for _, b := range []int64{tfMax / 2, tfMax, tfMax * 2, tfMax * 4, capMax * 3 / 4} {
		r := bench.Run(bench.RunConfig{Model: "bert", Batch: b, System: bench.SystemCapuchin, Device: dev, Iterations: 6})
		cell := "OOM"
		if r.OK {
			cell = fmt.Sprintf("%8.1f", r.Throughput)
		}
		note := ""
		if b > tfMax {
			note = "beyond the framework's limit"
		}
		fmt.Printf("%5d   capuchin   %9s   %s\n", b, cell, note)
	}
	fmt.Println("\npaper: TF-ori 64 vs Capuchin 450 (7x); throughput rises with batch as utilization climbs 31.7% -> 73.7%")
}
