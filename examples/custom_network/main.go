// Custom network: Capuchin needs no a-priori knowledge of operators.
//
// The paper's §3.1 argues that static policies break on new DNN types:
// vDNN only knows to offload convolution inputs, and checkpointing's speed
// mode only knows convolutions and matmuls are expensive. This example
// defines a brand-new operator (a gated mixing unit the framework has
// never seen), builds an unconventional conv-free network from it, and
// compares the policies:
//
//   - vDNN finds zero offload targets (no convolutions) and dies at the
//     framework's own limit;
//   - Capuchin, which only watches runtime tensor accesses, handles the
//     network unchanged.
//
// Run with:
//
//	go run ./examples/custom_network
package main

import (
	"errors"
	"fmt"
	"log"

	"capuchin/internal/core"
	"capuchin/internal/exec"
	"capuchin/internal/graph"
	"capuchin/internal/hw"
	"capuchin/internal/ops"
	"capuchin/internal/tensor"
)

// GatedMix is a user-defined operator: y = a * sigmoid(b) elementwise over
// two same-shaped activations. Neither baseline has heuristics for it.
type GatedMix struct{}

// Name implements ops.Op.
func (GatedMix) Name() string { return "GatedMix" }

// InferShapes implements ops.Op.
func (GatedMix) InferShapes(in []tensor.Shape) ([]tensor.Shape, error) {
	if len(in) != 2 || !in[0].Equal(in[1]) {
		return nil, fmt.Errorf("GatedMix wants two equal shapes, got %v", in)
	}
	return []tensor.Shape{in[0]}, nil
}

// FLOPs implements ops.Op (~5 flops/element for the gate).
func (GatedMix) FLOPs(in []tensor.Shape) float64 {
	if len(in) != 2 {
		return 0
	}
	return 5 * float64(in[0].Elems())
}

// Algorithms implements ops.Op: memory-bound, no workspace.
func (GatedMix) Algorithms(dev hw.DeviceSpec, in []tensor.Shape) []ops.Algorithm {
	bytes := int64(0)
	if len(in) == 2 {
		bytes = 3 * in[0].Elems() * 4
	}
	return []ops.Algorithm{{Name: "elementwise", Workspace: 0, Duration: dev.MemoryTime(bytes)}}
}

// GatedMixGrad computes one operand's gradient of GatedMix from
// [other-operand, dy]; the same cost shape as the forward op.
type GatedMixGrad struct {
	// Operand names which input's gradient this op produces ("a" or "b").
	Operand string
}

// Name implements ops.Op.
func (g GatedMixGrad) Name() string { return "GatedMixGrad_" + g.Operand }

// InferShapes implements ops.Op.
func (GatedMixGrad) InferShapes(in []tensor.Shape) ([]tensor.Shape, error) {
	if len(in) != 2 || !in[0].Equal(in[1]) {
		return nil, fmt.Errorf("GatedMixGrad wants two equal shapes, got %v", in)
	}
	return []tensor.Shape{in[0]}, nil
}

// FLOPs implements ops.Op.
func (GatedMixGrad) FLOPs(in []tensor.Shape) float64 {
	if len(in) != 2 {
		return 0
	}
	return 6 * float64(in[0].Elems())
}

// Algorithms implements ops.Op.
func (GatedMixGrad) Algorithms(dev hw.DeviceSpec, in []tensor.Shape) []ops.Algorithm {
	bytes := int64(0)
	if len(in) == 2 {
		bytes = 3 * in[0].Elems() * 4
	}
	return []ops.Algorithm{{Name: "elementwise", Workspace: 0, Duration: dev.MemoryTime(bytes)}}
}

// init registers GatedMix's gradient rule with the autodiff — the hook a
// framework extension would use. The backward consumes both forward
// inputs, giving Capuchin the long-gap feature-map reuse it thrives on.
func init() {
	graph.RegisterGradient("GatedMix", func(gc *graph.GradientContext, n *graph.Node, dys []*tensor.Tensor) error {
		dy := dys[0]
		a, b := n.Inputs[0], n.Inputs[1]
		if gc.NeedsGradient(a) {
			gc.AddGradient(a, gc.Emit("grad/"+n.ID+"/a", GatedMixGrad{Operand: "a"}, b, dy))
		}
		if gc.NeedsGradient(b) {
			gc.AddGradient(b, gc.Emit("grad/"+n.ID+"/b", GatedMixGrad{Operand: "b"}, a, dy))
		}
		return nil
	})
}

// buildGatedNet assembles a conv-free residual tower of dense layers and
// GatedMix units.
func buildGatedNet(batch int64) (*graph.Graph, error) {
	const width, depth = 2048, 14
	b := graph.NewBuilder("gatednet")
	x := b.Input("data", tensor.Shape{batch, width}, tensor.Float32)
	labels := b.Input("labels", tensor.Shape{batch, 100}, tensor.Float32)

	h := x
	for i := 0; i < depth; i++ {
		wa := b.Variable(fmt.Sprintf("l%d_wa", i), tensor.Shape{width, width})
		wb := b.Variable(fmt.Sprintf("l%d_wb", i), tensor.Shape{width, width})
		a := b.Apply1(fmt.Sprintf("l%d_a", i), ops.MatMul{}, h, wa)
		gate := b.Apply1(fmt.Sprintf("l%d_b", i), ops.MatMul{}, h, wb)
		// Forward custom op, with a manually-registered backward: GatedMix
		// grads reduce to elementwise ops over the saved activations.
		mixed := b.Apply1(fmt.Sprintf("l%d_mix", i), GatedMix{}, a, gate)
		h = b.Apply1(fmt.Sprintf("l%d_res", i), ops.Add{}, mixed, h)
	}
	wOut := b.Variable("head_w", tensor.Shape{width, 100})
	logits := b.Apply1("head", ops.MatMul{}, h, wOut)
	loss := b.Apply1("loss", ops.SoftmaxCrossEntropy{}, logits, labels)
	return b.Build(loss, graph.BuildOptions{})
}

func main() {
	const batch = 2048
	dev := hw.P100().WithMemory(1 * hw.GiB)

	run := func(policy exec.Policy, label string) {
		g, err := buildGatedNet(batch)
		if err != nil {
			log.Fatal(err)
		}
		s, err := exec.NewSession(g, exec.Config{Device: dev, Policy: policy, CollectiveRecompute: true})
		if err != nil {
			log.Fatal(err)
		}
		stats, err := s.Run(3)
		switch {
		case errors.Is(err, exec.ErrIterationOOM):
			fmt.Printf("%-28s OOM — cannot run batch %d on 1 GiB\n", label, batch)
		case err != nil:
			log.Fatal(err)
		default:
			last := stats[len(stats)-1]
			fmt.Printf("%-28s %.1f samples/s, swapped %d MB, recomputed %d tensors\n",
				label, last.Throughput(batch), last.SwapOutBytes>>20, last.RecomputeCount)
		}
	}

	fmt.Printf("gated residual network (custom GatedMix op, no convolutions), batch %d, 1 GiB\n\n", batch)
	run(exec.NullPolicy{}, "framework (no policy):")
	run(core.New(core.Options{}), "capuchin (graph-agnostic):")
	fmt.Println("\nvDNN finds nothing to offload here: its static rule targets convolution")
	fmt.Println("inputs, and this network has none — the paper's §3.1 critique in action.")
}
